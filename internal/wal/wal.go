// Package wal is the repo's one durable mutation stream: an append-only,
// segmented, CRC-32C-framed write-ahead log with Merkle-batched integrity
// proofs. Shard ticks journal dirty session records (and the audit stream of
// admissions, refusals, migrations, reaps, failovers, and prediction
// decisions) into it; incremental checkpoints become WAL snapshot +
// truncation; warm standbys tail it carrying batch roots so a follower can
// detect divergence before promotion.
//
// # On-disk format (normative; mirrored in ARCHITECTURE.md)
//
// A WAL directory holds numbered segment files, wal-<seq>.seg. Each begins
// with an 8-byte header:
//
//	magic "CAWL" | version uint16 LE | kind uint16 LE (1 = segment)
//
// followed by records framed exactly like checkpoint files:
//
//	type uint8 | length uint32 LE | payload | crc uint32 LE
//
// where crc is CRC-32C (Castagnoli) over type, length, and payload. Record
// types:
//
//	recEntry (1):  kind uint8 | seq uint64 LE | data — one appended entry.
//	               seq is the log-global entry sequence number, contiguous
//	               across segments, starting at 1.
//	recSeal (2):   first uint64 | last uint64 | count uint32 | root [32]byte —
//	               closes a batch: root is the Merkle root (see merkle.go)
//	               over the HashLeaf of every entry payload since the prior
//	               seal. A seal is the durability boundary: it is written
//	               and fsynced together with everything before it.
//	recFooter (3): batches uint32 | first uint64 | last uint64 | segroot
//	               [32]byte — written once when a segment is finalized
//	               (rotation or clean close); segroot is the Merkle root
//	               over the segment's batch roots.
//
// Every frame is issued as a single Write call, so a crash (or a faultnet
// byte-budgeted cut) tears at most one frame and recovery can classify the
// tear by the byte it lands on.
//
// # Durability and recovery
//
// Append buffers nothing in user space but does not fsync; Seal writes the
// seal record and fsyncs the segment. On Open, the last segment's tail is
// scanned: a torn frame, or valid entries past the last seal, are truncated
// back to the last sealed batch boundary and reported precisely
// (RecoveryInfo, the cogarm_wal_recovery_truncated_bytes_total counter, and
// an EvWalTruncate event). Damage anywhere except the active tail is not
// recoverable garbage from a crash — it is corruption, and Open refuses it.
//
// Batches are size-bounded here (Options.BatchEntries/BatchBytes force an
// inline seal) and time-bounded by the caller: the serve Journal seals on
// its flush cadence (cogarmd -wal-every), so a seal never rides the tick
// path.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sentinel errors, comparable with errors.Is.
var (
	// ErrCorrupt marks a structurally damaged segment outside the
	// recoverable torn tail: bad magic, a CRC mismatch before the last
	// seal, a tear in a non-final segment, or a Merkle root that does not
	// match its entries.
	ErrCorrupt = errors.New("wal: corrupt segment")
	// ErrVersion marks a segment written by an incompatible format version.
	ErrVersion = errors.New("wal: unsupported version")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: closed")
)

// Kind tags an entry's payload so readers can dispatch without decoding.
type Kind uint8

// Entry kinds journaled by the serve layer. The WAL itself treats payloads
// as opaque; these constants just keep writer and reader in one place.
const (
	// KindSession: gob-encoded checkpoint.SessionRecord for one dirty session.
	KindSession Kind = 1
	// KindRefs: gob-encoded serve journal manifest — the authoritative live
	// view (session refs + volatile overlay + NextID) as of the seal that
	// follows it. Replay prunes and overlays by the last one seen.
	KindRefs Kind = 2
	// KindModel: gob-encoded model entry (key + frozen payload), appended
	// once per model per process lifetime so a WAL-only replay can rebuild
	// sessions without a checkpoint.
	KindModel Kind = 3
	// KindAudit: fixed-binary obs.Event (see EncodeEvent) — the audit trail
	// of admissions, refusals, evictions, migrations, reaps, failovers,
	// checkpoints, and WAL truncations.
	KindAudit Kind = 4
	// KindDecision: fixed-binary prediction-decision summary for one
	// session at journal granularity (see EncodeDecision).
	KindDecision Kind = 5
)

const (
	walMagic   = "CAWL"
	walVersion = 1
	kindSeg    = 1
	headerLen  = 8

	recEntry  = byte(1)
	recSeal   = byte(2)
	recFooter = byte(3)

	frameOverhead = 1 + 4 + 4 // type + length + crc
	entryHdrLen   = 1 + 8     // kind + seq
	sealPayLen    = 8 + 8 + 4 + HashSize
	footerPayLen  = 4 + 8 + 8 + HashSize

	// maxRecordLen bounds a frame's payload so a corrupt length field
	// cannot drive a giant allocation. Matches the checkpoint framing.
	maxRecordLen = 256 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Defaults for Options zero values.
const (
	DefaultSegmentBytes = 8 << 20
	DefaultBatchEntries = 1024
	DefaultBatchBytes   = 1 << 20
)

// Options configures Open.
type Options struct {
	// Dir is the WAL directory; created if absent.
	Dir string
	// SegmentBytes rotates the active segment when it would grow past this
	// size (default 8 MiB). A single oversized entry still fits — segments
	// are bounded per rotation decision, not per record.
	SegmentBytes int64
	// BatchEntries seals the pending batch when it reaches this many
	// entries (default 1024).
	BatchEntries int
	// BatchBytes seals the pending batch when its payloads reach this many
	// bytes (default 1 MiB).
	BatchBytes int64
	// NoSync skips fsync on seal. For tests and benchmarks only: a crash
	// can then lose sealed batches, which production must never do.
	NoSync bool

	// wrap, when set, wraps the active segment's writer — the faultnet
	// test seam for byte-budgeted torn writes. Frames still go down as
	// single Write calls.
	wrap func(io.Writer) io.Writer
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.BatchEntries <= 0 {
		o.BatchEntries = DefaultBatchEntries
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = DefaultBatchBytes
	}
	return o
}

// RecoveryInfo reports what Open found — and, for a torn tail, exactly what
// it dropped.
type RecoveryInfo struct {
	// Segments scanned (including the reopened tail).
	Segments int
	// SealedEntries recovered across all segments.
	SealedEntries uint64
	// LastSeq is the highest sealed entry sequence number (0 if empty).
	LastSeq uint64
	// TruncatedBytes were cut from the tail segment: the torn frame plus
	// any valid-but-unsealed entries after the last seal.
	TruncatedBytes int64
	// DroppedEntries counts complete, CRC-valid entries that were discarded
	// because no seal covered them. A torn partial frame adds bytes but not
	// an entry.
	DroppedEntries int
	// TornSegment names the truncated file ("" when the tail was clean).
	TornSegment string
}

type segMeta struct {
	name        string
	seq         uint64
	first, last uint64 // entry seq range (0,0 when the segment has none)
	bytes       int64
}

// Log is an open write-ahead log. All methods are safe for concurrent use;
// the segment lock serializes every byte that reaches the active file, which
// is also the invariant the walsafe analyzer enforces (append-only: no reads
// or seeks under it).
type Log struct {
	opts Options

	//cogarm:walseg
	mu                sync.Mutex
	f                 *os.File
	w                 io.Writer // f, possibly wrapped by opts.wrap
	segSeq            uint64    // active segment number
	segPath           string
	segSize           int64
	segFirst, segLast uint64           // entry seqs in the active segment
	roots             [][HashSize]byte // sealed batch roots of the active segment

	leaves    [][HashSize]byte // pending (unsealed) leaf hashes
	pendFirst uint64
	pendBytes int64
	nextSeq   uint64    // next entry sequence number
	sealedSeq uint64    // last sealed entry sequence number
	sealed    []segMeta // finalized (footered) segments, oldest first
	frame     []byte    // frame assembly buffer, reused across appends
	recovered RecoveryInfo
	closed    bool
	err       error // sticky write-path error; the log refuses further use
}

// Open opens (creating if needed) the WAL in opts.Dir, recovering a torn
// tail to the last sealed batch boundary. The returned RecoveryInfo says
// what was found and what, if anything, was dropped.
func Open(opts Options) (*Log, RecoveryInfo, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("wal: open: %w", err)
	}
	names, err := segmentFiles(opts.Dir)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}

	l := &Log{opts: opts, nextSeq: 1}
	var info RecoveryInfo
	for i, name := range names {
		path := filepath.Join(opts.Dir, name)
		sc, scanErr := scanSegment(path)
		if scanErr != nil && !errors.Is(scanErr, errTorn) {
			return nil, info, scanErr // structural corruption, not a torn tail
		}
		last := i == len(names)-1
		info.Segments++
		info.SealedEntries += uint64(sc.sealedEntries)
		if sc.sealedLast > info.LastSeq {
			info.LastSeq = sc.sealedLast
		}
		if !last {
			if scanErr != nil || !sc.footer {
				return nil, info, fmt.Errorf("%w: %s is damaged but is not the tail segment", ErrCorrupt, name)
			}
			l.sealed = append(l.sealed, segMeta{
				name: name, seq: segSeqOf(name),
				first: sc.firstSealed, last: sc.sealedLast, bytes: sc.size,
			})
			continue
		}
		// Tail segment: cut everything past the last sealed boundary — but
		// only when the damage can actually be a crash tear. A segment whose
		// file still ends in a valid footer was finalized; a parse failure
		// inside it is mid-file corruption, and truncating would silently
		// discard sealed batches.
		if scanErr != nil && hasTrailingFooter(path) {
			return nil, info, fmt.Errorf("%w: %s has a finalized footer but does not parse cleanly (%v)", ErrCorrupt, name, scanErr)
		}
		// A tail torn inside the 8-byte header holds nothing recoverable, so
		// the file is removed outright and its number reused.
		if !sc.headerOK {
			if err := os.Remove(path); err != nil {
				return nil, info, fmt.Errorf("wal: recover %s: %w", name, err)
			}
			info.TruncatedBytes = sc.size
			info.TornSegment = name
			recordTruncate(sc.size, 0)
			continue
		}
		if cut := sc.size - sc.sealedEnd; cut > 0 {
			if err := os.Truncate(path, sc.sealedEnd); err != nil {
				return nil, info, fmt.Errorf("wal: recover %s: %w", name, err)
			}
			info.TruncatedBytes = cut
			info.DroppedEntries = sc.unsealedEntries
			info.TornSegment = name
			recordTruncate(cut, sc.unsealedEntries)
		}
		if sc.footer {
			// Finalized by a clean close: keep it read-only and start fresh.
			l.sealed = append(l.sealed, segMeta{
				name: name, seq: segSeqOf(name),
				first: sc.firstSealed, last: sc.sealedLast, bytes: sc.sealedEnd,
			})
			continue
		}
		// Reopen the truncated tail for appending.
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, info, fmt.Errorf("wal: reopen tail: %w", err)
		}
		l.f = f
		l.segSeq = segSeqOf(name)
		l.segPath = path
		l.segSize = sc.sealedEnd
		l.segFirst, l.segLast = sc.firstSealed, sc.sealedLast
		l.roots = sc.roots
	}
	if info.LastSeq > 0 {
		l.nextSeq = info.LastSeq + 1
	}
	l.sealedSeq = info.LastSeq
	l.recovered = info
	if l.f == nil {
		next := uint64(1)
		if n := len(l.sealed); n > 0 {
			next = l.sealed[n-1].seq + 1
		}
		if err := l.openSegment(next); err != nil {
			return nil, info, err
		}
	} else if opts.wrap != nil {
		l.w = opts.wrap(l.f)
	} else {
		l.w = l.f
	}
	l.updateGauges()
	return l, info, nil
}

// segmentFiles lists wal-*.seg names in dir, sorted by segment number.
func segmentFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			names = append(names, n)
		}
	}
	sort.Slice(names, func(i, j int) bool { return segSeqOf(names[i]) < segSeqOf(names[j]) })
	return names, nil
}

func segName(seq uint64) string { return fmt.Sprintf("wal-%016d.seg", seq) }

func segSeqOf(name string) uint64 {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	n, _ := strconv.ParseUint(s, 10, 64)
	return n
}

// openSegment creates and becomes the writer of segment seq. Caller holds
// l.mu or is Open (single-threaded).
func (l *Log) openSegment(seq uint64) error {
	path := filepath.Join(l.opts.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], walVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], kindSeg)
	w := io.Writer(f)
	if l.opts.wrap != nil {
		w = l.opts.wrap(f)
	}
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	l.f = f
	l.w = w
	l.segSeq = seq
	l.segPath = path
	l.segSize = headerLen
	l.segFirst, l.segLast = 0, 0
	l.roots = l.roots[:0]
	return nil
}

// buildFrame assembles one framed record into l.frame and returns it.
func (l *Log) buildFrame(typ byte, payload []byte) []byte {
	need := frameOverhead + len(payload)
	if cap(l.frame) < need {
		l.frame = make([]byte, need)
	}
	b := l.frame[:need]
	b[0] = typ
	binary.LittleEndian.PutUint32(b[1:5], uint32(len(payload)))
	copy(b[5:], payload)
	crc := crc32.Checksum(b[:5+len(payload)], castagnoli)
	binary.LittleEndian.PutUint32(b[5+len(payload):], crc)
	return b
}

// Append journals one entry and returns its sequence number. The entry is
// on disk (single Write) but not durable until the next Seal; size bounds
// may trigger that seal (and a segment rotation) inline.
func (l *Log) Append(kind Kind, data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	//cogarm:allow nolockblock -- the WAL segment lock serializes file appends by design; each is one bounded frame write
	return l.appendLocked(kind, data)
}

func (l *Log) appendLocked(kind Kind, data []byte) (uint64, error) {
	if err := l.usable(); err != nil {
		return 0, err
	}
	payload := make([]byte, entryHdrLen+len(data))
	payload[0] = byte(kind)
	seq := l.nextSeq
	binary.LittleEndian.PutUint64(payload[1:9], seq)
	copy(payload[entryHdrLen:], data)

	frameLen := int64(frameOverhead + len(payload))
	if l.segSize+frameLen > l.opts.SegmentBytes && l.segLast != 0 {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	frame := l.buildFrame(recEntry, payload)
	if err := l.writeAll(frame); err != nil {
		return 0, err
	}
	l.segSize += frameLen
	if l.segFirst == 0 {
		l.segFirst = seq
	}
	l.segLast = seq
	if len(l.leaves) == 0 {
		l.pendFirst = seq
	}
	l.leaves = append(l.leaves, HashLeaf(payload))
	l.pendBytes += int64(len(payload))
	l.nextSeq = seq + 1

	t := walTel()
	t.entries.Inc()
	t.bytes.Add(uint64(frameLen))
	t.activeBytes.Set(float64(l.activeBytesLocked()))

	if len(l.leaves) >= l.opts.BatchEntries || l.pendBytes >= l.opts.BatchBytes {
		if _, _, _, err := l.sealLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// writeAll pushes one frame down as a single Write and makes any error
// sticky: a torn in-flight segment is unrecoverable without a reopen.
func (l *Log) writeAll(b []byte) error {
	n, err := l.w.Write(b)
	if err == nil && n != len(b) {
		err = io.ErrShortWrite
	}
	if err != nil {
		l.err = fmt.Errorf("wal: write: %w", err)
		return l.err
	}
	return nil
}

func (l *Log) usable() error {
	if l.closed {
		return ErrClosed
	}
	return l.err
}

// Seal closes the pending batch: writes its seal record (Merkle root over
// the batch's entry payloads) and fsyncs the segment, making everything up
// to and including the batch durable. With nothing pending it is a no-op
// returning the zero root.
func (l *Log) Seal() (root [HashSize]byte, first, last uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usable(); err != nil {
		return root, 0, 0, err
	}
	//cogarm:allow nolockblock -- the WAL segment lock serializes the seal write + fsync by design
	return l.sealLocked()
}

func (l *Log) sealLocked() (root [HashSize]byte, first, last uint64, err error) {
	if len(l.leaves) == 0 {
		return root, 0, 0, nil
	}
	start := time.Now()
	root = Root(l.leaves)
	first, last = l.pendFirst, l.segLast
	var pay [sealPayLen]byte
	binary.LittleEndian.PutUint64(pay[0:8], first)
	binary.LittleEndian.PutUint64(pay[8:16], last)
	binary.LittleEndian.PutUint32(pay[16:20], uint32(len(l.leaves)))
	copy(pay[20:], root[:])
	frame := l.buildFrame(recSeal, pay[:])
	if err := l.writeAll(frame); err != nil {
		return root, 0, 0, err
	}
	l.segSize += int64(len(frame))
	if err := l.syncLocked(); err != nil {
		return root, 0, 0, err
	}
	l.roots = append(l.roots, root)
	l.sealedSeq = last
	l.leaves = l.leaves[:0]
	l.pendBytes = 0
	l.pendFirst = 0

	t := walTel()
	t.seals.Inc()
	t.sealDur.ObserveDuration(time.Since(start).Nanoseconds())
	t.activeBytes.Set(float64(l.activeBytesLocked()))
	return root, first, last, nil
}

// syncLocked fsyncs the active segment (timed), unless NoSync.
func (l *Log) syncLocked() error {
	if l.opts.NoSync {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: fsync: %w", err)
		return l.err
	}
	walTel().fsyncDur.ObserveDuration(time.Since(start).Nanoseconds())
	return nil
}

// Rotate seals any pending batch, finalizes the active segment with its
// footer (Merkle root over batch roots), and opens the next segment. A
// finalized segment is immutable and eligible for TruncateBelow.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usable(); err != nil {
		return err
	}
	//cogarm:allow nolockblock -- the WAL segment lock serializes rotation I/O (footer write, fsync, close, create) by design
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if _, _, _, err := l.sealLocked(); err != nil {
		return err
	}
	if l.segLast == 0 && len(l.roots) == 0 {
		return nil // empty segment: nothing to finalize
	}
	segRoot := Root(l.roots)
	var pay [footerPayLen]byte
	binary.LittleEndian.PutUint32(pay[0:4], uint32(len(l.roots)))
	binary.LittleEndian.PutUint64(pay[4:12], l.segFirst)
	binary.LittleEndian.PutUint64(pay[12:20], l.segLast)
	copy(pay[20:], segRoot[:])
	frame := l.buildFrame(recFooter, pay[:])
	if err := l.writeAll(frame); err != nil {
		return err
	}
	l.segSize += int64(len(frame))
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: close segment: %w", err)
		return l.err
	}
	l.sealed = append(l.sealed, segMeta{
		name: segName(l.segSeq), seq: l.segSeq,
		first: l.segFirst, last: l.segLast, bytes: l.segSize,
	})
	if err := l.openSegment(l.segSeq + 1); err != nil {
		l.err = err
		return err
	}
	l.updateGauges()
	return nil
}

// TruncateBelow removes finalized segments whose every entry sequence is
// ≤ seq — the compaction hook: once a checkpoint covers WAL position seq,
// the segments behind it are dead weight. The active segment is never
// removed. Returns how many segments were deleted.
func (l *Log) TruncateBelow(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usable(); err != nil {
		return 0, err
	}
	removed := 0
	for len(l.sealed) > 0 {
		m := l.sealed[0]
		if m.last == 0 || m.last > seq {
			break
		}
		//cogarm:allow nolockblock -- the WAL segment lock serializes segment removal by design (compaction is rare and bounded)
		if err := os.Remove(filepath.Join(l.opts.Dir, m.name)); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		l.sealed = l.sealed[1:]
		removed++
	}
	l.updateGauges()
	return removed, nil
}

// LastSealed returns the sequence number of the last durably sealed entry.
func (l *Log) LastSealed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealedSeq
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Recovered returns what Open found (stable after Open).
func (l *Log) Recovered() RecoveryInfo { return l.recovered }

// Close seals any pending batch, finalizes the active segment with its
// footer, and closes the file. A cleanly closed WAL reopens with no
// truncation.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	//cogarm:allow nolockblock -- the WAL segment lock serializes shutdown I/O by design
	err := l.closeLocked()
	l.closed = true
	return err
}

func (l *Log) closeLocked() error {
	if l.err != nil {
		l.f.Close()
		return l.err
	}
	if _, _, _, err := l.sealLocked(); err != nil {
		l.f.Close()
		return err
	}
	if l.segLast != 0 || len(l.roots) > 0 {
		segRoot := Root(l.roots)
		var pay [footerPayLen]byte
		binary.LittleEndian.PutUint32(pay[0:4], uint32(len(l.roots)))
		binary.LittleEndian.PutUint64(pay[4:12], l.segFirst)
		binary.LittleEndian.PutUint64(pay[12:20], l.segLast)
		copy(pay[20:], segRoot[:])
		if err := l.writeAll(l.buildFrame(recFooter, pay[:])); err != nil {
			l.f.Close()
			return err
		}
		if err := l.syncLocked(); err != nil {
			l.f.Close()
			return err
		}
	}
	return l.f.Close()
}

// Status is a point-in-time snapshot for /statusz.
type Status struct {
	Dir            string `json:"dir"`
	Segments       int    `json:"segments"`
	ActiveBytes    int64  `json:"active_bytes"`
	NextSeq        uint64 `json:"next_seq"`
	SealedSeq      uint64 `json:"sealed_seq"`
	PendingEntries int    `json:"pending_entries"`
	Batches        int    `json:"batches_in_segment"`
	LastRoot       string `json:"last_root,omitempty"`
	TruncatedBytes int64  `json:"recovery_truncated_bytes,omitempty"`
	DroppedEntries int    `json:"recovery_dropped_entries,omitempty"`
}

// Status reports the log's current shape.
func (l *Log) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Status{
		Dir:            l.opts.Dir,
		Segments:       len(l.sealed) + 1,
		ActiveBytes:    l.activeBytesLocked(),
		NextSeq:        l.nextSeq,
		SealedSeq:      l.sealedSeq,
		PendingEntries: len(l.leaves),
		Batches:        len(l.roots),
		TruncatedBytes: l.recovered.TruncatedBytes,
		DroppedEntries: l.recovered.DroppedEntries,
	}
	if n := len(l.roots); n > 0 {
		st.LastRoot = hexRoot(l.roots[n-1])
	}
	return st
}

func (l *Log) activeBytesLocked() int64 {
	total := l.segSize
	for _, m := range l.sealed {
		total += m.bytes
	}
	return total
}

func (l *Log) updateGauges() {
	t := walTel()
	t.segments.Set(float64(len(l.sealed) + 1))
	t.activeBytes.Set(float64(l.activeBytesLocked()))
}

const hexDigits = "0123456789abcdef"

func hexRoot(r [HashSize]byte) string {
	out := make([]byte, 2*HashSize)
	for i, b := range r {
		out[2*i] = hexDigits[b>>4]
		out[2*i+1] = hexDigits[b&0x0f]
	}
	return string(out)
}
