package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collect dumps dir into a slice, failing the test on error.
func collect(t *testing.T, dir string) []Entry {
	t.Helper()
	var out []Entry
	if err := Dump(dir, func(e Entry) error { out = append(out, e); return nil }); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	return out
}

func TestAppendSealReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, info, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if info.Segments != 0 || info.LastSeq != 0 {
		t.Fatalf("fresh open reported recovery %+v", info)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		data := []byte(fmt.Sprintf("entry-%d", i))
		want = append(want, data)
		seq, err := l.Append(KindSession, data)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	root, first, last, err := l.Seal()
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if first != 1 || last != 10 || root == ([HashSize]byte{}) {
		t.Fatalf("Seal = (%x, %d, %d)", root, first, last)
	}
	if got := l.LastSealed(); got != 10 {
		t.Fatalf("LastSealed = %d", got)
	}
	// Sealing with nothing pending is a no-op.
	if r2, _, _, err := l.Seal(); err != nil || r2 != ([HashSize]byte{}) {
		t.Fatalf("empty Seal = (%x, %v)", r2, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Clean reopen: no truncation, sequence numbers continue.
	l2, info, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if info.TruncatedBytes != 0 || info.TornSegment != "" {
		t.Fatalf("clean reopen truncated: %+v", info)
	}
	if info.SealedEntries != 10 || info.LastSeq != 10 {
		t.Fatalf("recovery info %+v", info)
	}
	if seq, err := l2.Append(KindAudit, []byte("next")); err != nil || seq != 11 {
		t.Fatalf("post-reopen Append = (%d, %v)", seq, err)
	}
	if _, _, _, err := l2.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}

	got := collect(t, dir)
	if len(got) != 11 {
		t.Fatalf("dumped %d entries, want 11", len(got))
	}
	for i, e := range got[:10] {
		if e.Seq != uint64(i+1) || e.Kind != KindSession || !bytes.Equal(e.Data, want[i]) || !e.Sealed {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	if got[10].Kind != KindAudit || string(got[10].Data) != "next" {
		t.Fatalf("entry 11 = %+v", got[10])
	}
}

func TestBatchBoundsForceSeal(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, BatchEntries: 3, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 7; i++ {
		if _, err := l.Append(KindAudit, []byte{byte(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// 7 entries with BatchEntries=3: two auto-seals cover 6; the 7th pends.
	if got := l.LastSealed(); got != 6 {
		t.Fatalf("LastSealed = %d, want 6", got)
	}
	st := l.Status()
	if st.PendingEntries != 1 || st.Batches != 2 {
		t.Fatalf("Status = %+v", st)
	}
}

func TestRotationAndTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so appends rotate organically.
	l, _, err := Open(Options{Dir: dir, SegmentBytes: 256, BatchEntries: 4, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := bytes.Repeat([]byte("x"), 48)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(KindSession, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, _, _, err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	st := l.Status()
	if st.Segments < 3 {
		t.Fatalf("expected organic rotation, got %d segments", st.Segments)
	}

	// Entries survive rotation in order.
	got := collect(t, dir)
	if len(got) != 20 || got[0].Seq != 1 || got[19].Seq != 20 {
		t.Fatalf("dump across segments: %d entries", len(got))
	}

	// Truncating below a mid-log seq removes only fully covered segments.
	removed, err := l.TruncateBelow(10)
	if err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	if removed == 0 {
		t.Fatalf("expected at least one segment removed")
	}
	after := collect(t, dir)
	if len(after) == 0 || after[len(after)-1].Seq != 20 {
		t.Fatalf("tail entries lost by truncation")
	}
	for _, e := range after {
		if e.Seq > 10 {
			break
		}
	}
	// Everything still present must verify.
	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify after truncation: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen continues after both rotation and truncation.
	l2, info, err := Open(Options{Dir: dir, SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if info.TruncatedBytes != 0 {
		t.Fatalf("unexpected truncation on clean reopen: %+v", info)
	}
	if seq, err := l2.Append(KindSession, payload); err != nil || seq != 21 {
		t.Fatalf("Append after reopen = (%d, %v)", seq, err)
	}
}

func TestTruncateBelowNeverRemovesActiveSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append(KindSession, []byte("a")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, _, _, err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if removed, err := l.TruncateBelow(99); err != nil || removed != 0 {
		t.Fatalf("TruncateBelow touched the active segment: (%d, %v)", removed, err)
	}
	if got := collect(t, dir); len(got) != 1 {
		t.Fatalf("active segment lost")
	}
}

func TestClosedLogRefusesUse(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append(KindSession, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v", err)
	}
	if _, _, _, err := l.Seal(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Seal after Close = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// frameOffsets walks a segment file and returns the byte offset of every
// frame start, plus each frame's type, using only the on-disk format.
func frameOffsets(t *testing.T, path string) (offs []int64, types []byte) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	off := int64(headerLen)
	for off < int64(len(raw)) {
		offs = append(offs, off)
		types = append(types, raw[off])
		plen := binary.LittleEndian.Uint32(raw[off+1 : off+5])
		off += frameOverhead + int64(plen)
	}
	return offs, types
}

func TestVerifyDetectsFlippedPayloadByte(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(KindSession, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, _, _, err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("clean Verify: %v", err)
	}

	seg := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	offs, types := frameOffsets(t, seg)
	var entryOff int64 = -1
	for i, typ := range types {
		if typ == recEntry {
			entryOff = offs[i]
		}
	}
	if entryOff < 0 {
		t.Fatalf("no entry frame found")
	}
	plen := binary.LittleEndian.Uint32(raw[entryOff+1 : entryOff+5])

	// Flip one byte of the entry's user data without fixing the CRC: the
	// framing layer alone must reject the segment.
	tampered := append([]byte(nil), raw...)
	tampered[entryOff+5+int64(entryHdrLen)] ^= 0x01
	if err := os.WriteFile(seg, tampered, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatalf("Verify accepted a CRC-invalid segment")
	}

	// Now also recompute the frame CRC — simulating tampering below the
	// framing layer. Only the Merkle seal can catch this, and must.
	crc := crc32.Checksum(tampered[entryOff:entryOff+5+int64(plen)], castagnoli)
	binary.LittleEndian.PutUint32(tampered[entryOff+5+int64(plen):], crc)
	if err := os.WriteFile(seg, tampered, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	reports, err := Verify(dir)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "merkle root mismatch") {
		t.Fatalf("flip with fixed CRC not caught by merkle layer: %v", err)
	}
	if len(reports) != 1 || reports[0].Err == "" {
		t.Fatalf("reports = %+v", reports)
	}
}

func TestVerifyReportsSegmentRoots(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(KindAudit, []byte{byte(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if _, _, _, err := l.Seal(); err != nil {
			t.Fatalf("Seal: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	reports, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %+v", reports)
	}
	r := reports[0]
	if r.Batches != 4 || r.Entries != 4 || !r.Footer || r.Root == "" ||
		r.FirstSeq != 1 || r.LastSeq != 4 {
		t.Fatalf("report = %+v", r)
	}
}

func TestOpenRefusesDamagedNonTailSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(KindSession, bytes.Repeat([]byte("a"), 64)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if _, err := l.Append(KindSession, []byte("b")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, _, _, err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Tear the FIRST (non-tail) segment: that is corruption, not recovery.
	seg1 := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(seg1, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := Open(Options{Dir: dir, NoSync: true}); err == nil {
		t.Fatalf("Open accepted a torn non-tail segment")
	}
}

func TestStatusShape(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append(KindSession, []byte("x")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, _, _, err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	st := l.Status()
	if st.Dir != dir || st.Segments != 1 || st.SealedSeq != 1 || st.NextSeq != 2 ||
		st.ActiveBytes <= headerLen || st.LastRoot == "" {
		t.Fatalf("Status = %+v", st)
	}
}
