package compress

import (
	"math"
	"testing"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/models"
	"cognitivearm/internal/tensor"
)

// trainedCNN returns a small trained CNN plus held-out windows.
func trainedCNN(t *testing.T) (*models.NNClassifier, []dataset.Window) {
	t.Helper()
	bySubject, err := dataset.Build([]int{0, 1}, 1, dataset.ShortProtocol(40), 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	var all []dataset.Window
	// Pool in fixed subject order: ranging over the map makes the train/val
	// split depend on iteration order, which flakes the accuracy thresholds.
	for _, id := range []int{0, 1} {
		all = append(all, bySubject[id]...)
	}
	dataset.Shuffle(all, tensor.NewRNG(3))
	cut := len(all) * 8 / 10
	train, val := all[:cut], all[cut:]
	s := models.Spec{Family: models.FamilyCNN, WindowSize: 100, Optimizer: "adam", LR: 3e-3,
		Dropout: 0.1, ConvLayers: 1, Filters: 16, Kernel: 5, Stride: 2, Pool: "none"}
	clf, _, err := models.Train(s, train, val, models.TrainOptions{Epochs: 10, BatchSize: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return clf.(*models.NNClassifier), val
}

func TestCloneIndependence(t *testing.T) {
	clf, val := trainedCNN(t)
	clone, err := CloneNN(clf)
	if err != nil {
		t.Fatal(err)
	}
	// Same predictions.
	for _, w := range val[:5] {
		if clf.Predict(w.Data) != clone.Predict(w.Data) {
			t.Fatal("clone should predict identically")
		}
	}
	// Mutating the clone must not touch the original.
	orig := clf.Net.Params()[0].W.Data[0]
	clone.Net.Params()[0].W.Data[0] = 999
	if clf.Net.Params()[0].W.Data[0] != orig {
		t.Fatal("clone shares storage with original")
	}
}

func TestPruneSparsityLevels(t *testing.T) {
	clf, _ := trainedCNN(t)
	for _, ratio := range PaperPruneLevels() {
		pruned, rep, err := Prune(clf, ratio)
		if err != nil {
			t.Fatal(err)
		}
		got := Sparsity(pruned)
		if math.Abs(got-ratio) > 0.05 {
			t.Fatalf("ratio %v: achieved sparsity %v", ratio, got)
		}
		if ratio > 0 && rep.WeightsZeroed == 0 {
			t.Fatalf("ratio %v zeroed nothing", ratio)
		}
	}
}

func TestPruneMonotoneSparsity(t *testing.T) {
	clf, _ := trainedCNN(t)
	prev := -1.0
	for _, ratio := range PaperPruneLevels() {
		pruned, _, _ := Prune(clf, ratio)
		s := Sparsity(pruned)
		if s < prev {
			t.Fatalf("sparsity not monotone: %v after %v", s, prev)
		}
		prev = s
	}
}

func TestModeratePruningPreservesAccuracy(t *testing.T) {
	clf, val := trainedCNN(t)
	base := models.Accuracy(clf, val)
	pruned, _, err := Prune(clf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	acc := models.Accuracy(pruned, val)
	if acc < base-0.15 {
		t.Fatalf("50%% pruning dropped accuracy %v → %v", base, acc)
	}
}

func TestExtremePruningHurtsMoreThanModerate(t *testing.T) {
	clf, val := trainedCNN(t)
	p50, _, _ := Prune(clf, 0.5)
	p90, _, _ := Prune(clf, 0.9)
	a50 := models.Accuracy(p50, val)
	a90 := models.Accuracy(p90, val)
	if a90 > a50+0.05 {
		t.Fatalf("90%% pruning (%v) should not beat 50%% (%v)", a90, a50)
	}
}

func TestPruneBadRatio(t *testing.T) {
	clf, _ := trainedCNN(t)
	for _, r := range []float64{-0.1, 1.0, 1.5} {
		if _, _, err := Prune(clf, r); err == nil {
			t.Fatalf("ratio %v should error", r)
		}
	}
}

func TestPruneDoesNotTouchOriginal(t *testing.T) {
	clf, _ := trainedCNN(t)
	before := Sparsity(clf)
	if _, _, err := Prune(clf, 0.9); err != nil {
		t.Fatal(err)
	}
	if after := Sparsity(clf); after != before {
		t.Fatal("pruning mutated the original model")
	}
}

func TestQuantizePerTensorMild(t *testing.T) {
	clf, val := trainedCNN(t)
	base := models.Accuracy(clf, val)
	q, rep, err := Quantize(clf, PerTensor)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bits != 8 {
		t.Fatal("bits should be 8")
	}
	acc := models.Accuracy(q, val)
	if acc < base-0.1 {
		t.Fatalf("per-tensor int8 should be mild: %v → %v", base, acc)
	}
	// Weights must lie on the int8 grid per tensor.
	for _, p := range q.Net.Params() {
		maxAbs := 0.0
		for _, w := range p.W.Data {
			if a := math.Abs(w); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		scale := maxAbs / 127
		for _, w := range p.W.Data {
			q := w / scale
			if math.Abs(q-math.Round(q)) > 1e-6 {
				t.Fatalf("weight %v not on int8 grid (scale %v)", w, scale)
			}
		}
	}
}

// TestQuantizeGlobalNaiveDegrades reproduces the qualitative Figure 12
// result: the naive edge-pipeline quantization severely reduces accuracy.
func TestQuantizeGlobalNaiveDegrades(t *testing.T) {
	clf, val := trainedCNN(t)
	base := models.Accuracy(clf, val)
	if base < 0.6 {
		t.Skipf("baseline too weak (%v) for a meaningful comparison", base)
	}
	q, _, err := Quantize(clf, GlobalNaive)
	if err != nil {
		t.Fatal(err)
	}
	perTensor, _, _ := Quantize(clf, PerTensor)
	aNaive := models.Accuracy(q, val)
	aGood := models.Accuracy(perTensor, val)
	if aNaive > aGood {
		t.Fatalf("naive global quantization (%v) should not beat per-tensor (%v)", aNaive, aGood)
	}
}

func TestQuantizeUnknownMode(t *testing.T) {
	clf, _ := trainedCNN(t)
	if _, _, err := Quantize(clf, QuantMode(9)); err == nil {
		t.Fatal("unknown mode should error")
	}
}

func TestPaperPruneLevels(t *testing.T) {
	levels := PaperPruneLevels()
	want := []float64{0, 0.3, 0.5, 0.7, 0.9}
	if len(levels) != len(want) {
		t.Fatal("levels mismatch")
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels %v", levels)
		}
	}
}
