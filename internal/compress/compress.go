// Package compress implements the paper's model-compression stage (§III-E):
// global magnitude pruning at {0,30,50,70,90}% and post-training 8-bit
// quantization. Pruning zeroes the globally smallest weights; quantization
// snaps weights to an int8 grid. Two calibration modes are provided: the
// careful per-tensor scheme, and the naive globally-calibrated scheme whose
// accuracy collapse reproduces the paper's Figure 12 finding that 8-bit
// quantization "severely reduces performance" while slashing runtime.
package compress

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/models"
	"cognitivearm/internal/nn"
	"cognitivearm/internal/tensor"
)

// prunable reports whether a parameter participates in magnitude pruning.
// Biases and LayerNorm affine terms are exempt, the standard practice the
// paper's "global pruning ... across the network" implies for weights.
func prunable(p *nn.Param) bool {
	return strings.Contains(p.Name, ".W")
}

// CloneNN rebuilds the classifier's architecture from its spec and copies
// the trained weights, so compression never mutates the original model.
func CloneNN(c *models.NNClassifier) (*models.NNClassifier, error) {
	net, err := models.BuildNet(c.Spec, 0)
	if err != nil {
		return nil, fmt.Errorf("compress: rebuild: %w", err)
	}
	src := c.Net.Params()
	dst := net.Params()
	if len(src) != len(dst) {
		return nil, fmt.Errorf("compress: parameter structure mismatch (%d vs %d)", len(src), len(dst))
	}
	for i := range src {
		if len(src[i].W.Data) != len(dst[i].W.Data) {
			return nil, fmt.Errorf("compress: parameter %s size mismatch", src[i].Name)
		}
		copy(dst[i].W.Data, src[i].W.Data)
	}
	return &models.NNClassifier{Net: net, Spec: c.Spec}, nil
}

// PruneReport describes the outcome of a pruning pass.
type PruneReport struct {
	Ratio            float64 // requested prune fraction
	WeightsTotal     int     // prunable weights considered
	WeightsZeroed    int
	Threshold        float64 // |w| cutoff applied
	AchievedSparsity float64
}

// Prune returns a copy of the classifier with the globally smallest ratio
// fraction of prunable weights set to zero (§III-E1). ratio must be in
// [0, 1).
func Prune(c *models.NNClassifier, ratio float64) (*models.NNClassifier, PruneReport, error) {
	if ratio < 0 || ratio >= 1 {
		return nil, PruneReport{}, fmt.Errorf("compress: prune ratio %v out of [0,1)", ratio)
	}
	out, err := CloneNN(c)
	if err != nil {
		return nil, PruneReport{}, err
	}
	rep := PruneReport{Ratio: ratio}
	var mags []float64
	for _, p := range out.Net.Params() {
		if !prunable(p) {
			continue
		}
		for _, w := range p.W.Data {
			mags = append(mags, math.Abs(w))
		}
	}
	rep.WeightsTotal = len(mags)
	if ratio == 0 || len(mags) == 0 {
		return out, rep, nil
	}
	sort.Float64s(mags)
	k := int(ratio * float64(len(mags)))
	if k >= len(mags) {
		k = len(mags) - 1
	}
	rep.Threshold = mags[k]
	for _, p := range out.Net.Params() {
		if !prunable(p) {
			continue
		}
		for i, w := range p.W.Data {
			if math.Abs(w) < rep.Threshold {
				p.W.Data[i] = 0
				rep.WeightsZeroed++
			}
		}
	}
	rep.AchievedSparsity = float64(rep.WeightsZeroed) / float64(rep.WeightsTotal)
	return out, rep, nil
}

// Sparsity reports the fraction of prunable weights that are exactly zero.
func Sparsity(c *models.NNClassifier) float64 {
	var total, zeros int
	for _, p := range c.Net.Params() {
		if !prunable(p) {
			continue
		}
		for _, w := range p.W.Data {
			total++
			if w == 0 {
				zeros++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zeros) / float64(total)
}

// QuantMode selects the quantization calibration scheme.
type QuantMode int

// Calibration schemes.
const (
	// PerTensor uses one max-abs scale per weight tensor — careful
	// calibration with mild accuracy cost.
	PerTensor QuantMode = iota
	// GlobalNaive uses a single network-wide scale derived from mean
	// magnitude, clipping outliers hard — the aggressive low-effort pipeline
	// whose accuracy collapse Figure 12 reports for the edge deployment.
	GlobalNaive
)

// QuantReport describes a quantization pass.
type QuantReport struct {
	Mode        QuantMode
	Bits        int
	ClippedFrac float64 // fraction of weights saturated at ±127
}

// Quantize returns a copy of the classifier whose weights have been snapped
// to an int8 grid and dequantized (fake-quant inference, numerically
// identical to int8 execution for these layers).
func Quantize(c *models.NNClassifier, mode QuantMode) (*models.NNClassifier, QuantReport, error) {
	out, err := CloneNN(c)
	if err != nil {
		return nil, QuantReport{}, err
	}
	rep := QuantReport{Mode: mode, Bits: 8}
	params := out.Net.Params()

	var clipped, total int
	quantTensor := func(data []float64, scale float64) {
		for i, w := range data {
			q := math.Round(w / scale)
			if q > 127 {
				q = 127
				clipped++
			} else if q < -127 {
				q = -127
				clipped++
			}
			data[i] = q * scale
			total++
		}
	}

	switch mode {
	case PerTensor:
		for _, p := range params {
			maxAbs := 0.0
			for _, w := range p.W.Data {
				if a := math.Abs(w); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs == 0 {
				total += len(p.W.Data)
				continue
			}
			quantTensor(p.W.Data, maxAbs/127)
		}
	case GlobalNaive:
		// One scale for the whole network from the mean magnitude: small
		// layers are crushed to the nearest grid point and outliers saturate.
		var sum float64
		var n int
		for _, p := range params {
			for _, w := range p.W.Data {
				sum += math.Abs(w)
				n++
			}
		}
		if n == 0 {
			return out, rep, nil
		}
		// Grid spans ±1× the mean magnitude: every weight larger than the
		// network-wide mean saturates, flattening exactly the strong weights
		// that carry the learned features. This is the catastrophic
		// low-effort calibration whose collapse Figure 12 measured.
		scale := (sum / float64(n)) / 127
		if scale == 0 {
			return out, rep, nil
		}
		for _, p := range params {
			quantTensor(p.W.Data, scale)
		}
	default:
		return nil, QuantReport{}, fmt.Errorf("compress: unknown quantization mode %d", mode)
	}
	if total > 0 {
		rep.ClippedFrac = float64(clipped) / float64(total)
	}
	return out, rep, nil
}

// PaperPruneLevels returns the sweep of §III-E1.
func PaperPruneLevels() []float64 { return []float64{0, 0.3, 0.5, 0.7, 0.9} }

// Mask records which prunable weights are zero, so fine-tuning can preserve
// the sparsity pattern.
type Mask [][]bool

// MaskOf captures the zero pattern of the classifier's prunable parameters.
func MaskOf(c *models.NNClassifier) Mask {
	params := c.Net.Params()
	m := make(Mask, len(params))
	for i, p := range params {
		if !prunable(p) {
			continue
		}
		row := make([]bool, len(p.W.Data))
		for j, w := range p.W.Data {
			row[j] = w == 0
		}
		m[i] = row
	}
	return m
}

// Apply re-zeroes the masked weights of net (parameter order must match the
// network the mask was captured from).
func (m Mask) Apply(net *nn.Network) {
	params := net.Params()
	for i, row := range m {
		if row == nil || i >= len(params) {
			continue
		}
		for j, z := range row {
			if z {
				params[i].W.Data[j] = 0
			}
		}
	}
}

// FineTunePruned retrains a pruned classifier for a few epochs while
// re-applying the sparsity mask after every optimizer step — the standard
// prune-then-fine-tune recipe that recovers the accuracy the paper reports
// at 70 % sparsity.
func FineTunePruned(c *models.NNClassifier, train, val []dataset.Window, epochs int, seed uint64) nn.History {
	mask := MaskOf(c)
	opt, err := nn.NewOptimizer(c.Spec.Optimizer, c.Spec.LR)
	if err != nil {
		opt = nn.NewAdam(1e-3)
	}
	hist := nn.Fit(c.Net, models.ToExamples(train), models.ToExamples(val), nn.TrainConfig{
		Epochs:      epochs,
		BatchSize:   32,
		Optimizer:   opt,
		MaxGradNorm: 5,
		Seed:        seed,
		PostStep:    func(net *nn.Network) { mask.Apply(net) },
	})
	mask.Apply(c.Net)
	return hist
}

// ActivationQuantized runs a network with both weights and activations
// snapped to an int8 grid — the full integer-inference simulation. The
// activation scale is fixed at calibration time; GlobalNaive derives one
// shared scale for every layer (the low-effort pipeline of Figure 12),
// PerTensor calibrates per layer.
type ActivationQuantized struct {
	Base   *models.NNClassifier
	Scales []float64 // per-layer activation scale (shared entry re-used when naive)
}

// QuantizeWithActivations quantizes weights via Quantize and calibrates
// activation scales over the provided calibration windows.
func QuantizeWithActivations(c *models.NNClassifier, mode QuantMode, calib []dataset.Window) (*ActivationQuantized, error) {
	wq, _, err := Quantize(c, mode)
	if err != nil {
		return nil, err
	}
	layers := wq.Net.Layers
	maxAbs := make([]float64, len(layers))
	var globalSum float64
	var globalN int
	for _, w := range calib {
		x := w.Data
		for li, l := range layers {
			x = l.Forward(x, false)
			for _, v := range x.Data {
				a := math.Abs(v)
				if a > maxAbs[li] {
					maxAbs[li] = a
				}
				globalSum += a
				globalN++
			}
		}
	}
	scales := make([]float64, len(layers))
	switch mode {
	case PerTensor:
		for i, m := range maxAbs {
			if m == 0 {
				m = 1
			}
			scales[i] = m / 127
		}
	case GlobalNaive:
		// One scale for every layer from the global mean activation, with no
		// headroom: everything above the mean magnitude saturates. This is
		// the failure mode of an uncalibrated integer pipeline — exactly the
		// collapse the paper measured on its int8 edge deployment.
		mean := 1.0
		if globalN > 0 {
			mean = globalSum / float64(globalN)
		}
		s := mean / 2 / 127
		if s == 0 {
			s = 1.0 / 127
		}
		for i := range scales {
			scales[i] = s
		}
	default:
		return nil, fmt.Errorf("compress: unknown quantization mode %d", mode)
	}
	return &ActivationQuantized{Base: wq, Scales: scales}, nil
}

func fakeQuant(m *tensor.Matrix, scale float64) {
	for i, v := range m.Data {
		q := math.Round(v / scale)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		m.Data[i] = q * scale
	}
}

// Probs implements models.Classifier.
func (a *ActivationQuantized) Probs(x *tensor.Matrix) []float64 {
	cur := x.Clone()
	fakeQuant(cur, a.Scales[0])
	for li, l := range a.Base.Net.Layers {
		cur = l.Forward(cur, false)
		fakeQuant(cur, a.Scales[li])
	}
	probs := make([]float64, cur.Cols)
	tensor.Softmax(probs, cur.Row(0))
	return probs
}

// Predict implements models.Classifier.
func (a *ActivationQuantized) Predict(x *tensor.Matrix) int {
	return tensor.Argmax(a.Probs(x))
}

// NumParams implements models.Classifier.
func (a *ActivationQuantized) NumParams() int { return a.Base.NumParams() }

// WindowSize implements models.Classifier.
func (a *ActivationQuantized) WindowSize() int { return a.Base.WindowSize() }

// Name implements models.Classifier.
func (a *ActivationQuantized) Name() string { return a.Base.Name() + "+int8act" }
