// Package asr provides CognitiveArm's speech channel (§III-F): a keyword
// spotter that recognises the DoF mode-switch commands over synthetic audio,
// and the Whisper-family model zoo whose PCC-vs-runtime Pareto study
// reproduces Figure 7. The real system runs Whisper-small; here the spotter
// is a filterbank-template matcher that plays the same architectural role
// (audio in → command out) on the synthesized vocabulary.
package asr

import (
	"fmt"
	"math"

	"cognitivearm/internal/audio"
	"cognitivearm/internal/tensor"
)

// numBands is the analysis filterbank size.
const numBands = 8

// bandEdges spaces numBands bands log-ish across 100–4000 Hz.
var bandEdges = []float64{100, 250, 450, 700, 1000, 1400, 1900, 2600, 4000}

// Features converts a waveform into per-frame band-energy vectors using a
// Goertzel-style single-bin DFT probe per band — cheap and stdlib-only.
func Features(wave []float64) [][]float64 {
	nFrames := len(wave) / audio.FrameSize
	out := make([][]float64, nFrames)
	for f := 0; f < nFrames; f++ {
		frame := wave[f*audio.FrameSize : (f+1)*audio.FrameSize]
		vec := make([]float64, numBands)
		for b := 0; b < numBands; b++ {
			centre := math.Sqrt(bandEdges[b] * bandEdges[b+1])
			vec[b] = goertzel(frame, centre, audio.SampleRate)
		}
		out[f] = vec
	}
	return out
}

// goertzel measures the magnitude of one frequency in the frame.
func goertzel(frame []float64, freqHz, fsHz float64) float64 {
	w := 2 * math.Pi * freqHz / fsHz
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range frame {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power) / float64(len(frame))
}

// profile summarises an utterance as the energy-weighted mean band vector of
// its loudest frames, normalised to unit length.
func profile(feats [][]float64) []float64 {
	out := make([]float64, numBands)
	for _, f := range feats {
		for b, v := range f {
			out[b] += v * v
		}
	}
	var norm float64
	for _, v := range out {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for b := range out {
			out[b] /= norm
		}
	}
	return out
}

// Spotter recognises the keyword vocabulary by cosine similarity against
// stored per-word spectral templates.
type Spotter struct {
	templates map[audio.Word][]float64
	// MinScore rejects utterances whose best similarity is below this.
	MinScore float64
}

// NewSpotter builds speaker-independent templates by averaging the spectral
// profiles of several enrolment speakers derived from the seed, the keyword
// analogue of multi-speaker ASR training.
func NewSpotter(enrollSeed uint64) *Spotter {
	const enrolSpeakers = 6
	s := &Spotter{templates: map[audio.Word][]float64{}, MinScore: 0.6}
	for _, w := range audio.Keywords() {
		acc := make([]float64, numBands)
		for k := uint64(0); k < enrolSpeakers; k++ {
			synth := audio.NewSynthesizer(enrollSeed*1000 + k)
			p := profile(Features(synth.Utter(w, 0.9)))
			for b := range acc {
				acc[b] += p[b]
			}
		}
		var norm float64
		for _, v := range acc {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			for b := range acc {
				acc[b] /= norm
			}
		}
		s.templates[w] = acc
	}
	return s
}

// Recognize classifies a waveform, returning the word and its confidence.
// Low-confidence or low-energy audio returns (Silence, score). The energy
// gate mirrors the VAD: spectral shape alone cannot distinguish broadband
// noise from speech, loudness can.
func (s *Spotter) Recognize(wave []float64) (audio.Word, float64) {
	peak := 0.0
	for _, e := range audio.FrameEnergies(wave) {
		if e > peak {
			peak = e
		}
	}
	if peak < 0.05 {
		return audio.Silence, 0
	}
	p := profile(Features(wave))
	// Spectral-flatness gate: speech concentrates energy in formant bands,
	// broadband noise spreads it evenly. A flat unit-norm profile has every
	// component near 1/√8 ≈ 0.35; require a dominant band before matching.
	maxBand := 0.0
	for _, v := range p {
		if v > maxBand {
			maxBand = v
		}
	}
	if maxBand < 0.5 {
		return audio.Silence, 0
	}
	best, bestScore := audio.Silence, 0.0
	for w, tmpl := range s.templates {
		score := cosine(p, tmpl)
		if score > bestScore {
			best, bestScore = w, score
		}
	}
	if bestScore < s.MinScore {
		return audio.Silence, bestScore
	}
	return best, bestScore
}

func cosine(a, b []float64) float64 {
	var num, da, db float64
	for i := range a {
		num += a[i] * b[i]
		da += a[i] * a[i]
		db += b[i] * b[i]
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// ZooModel is one entry of the Whisper-family study (Fig. 7): parameters,
// compute per second of audio, VRAM, and an intrinsic transcription fidelity
// used to simulate its output quality.
type ZooModel struct {
	Name       string
	Params     int64 // parameter count
	MACsPerSec int64 // multiply-accumulates per second of audio
	VRAMGB     float64
	// fidelity in (0,1): fraction of the reference signal preserved in the
	// model's output; bigger models preserve more.
	fidelity float64
}

// WhisperZoo returns the model ladder evaluated in Figure 7.
func WhisperZoo() []ZooModel {
	return []ZooModel{
		{Name: "whisper-tiny", Params: 39e6, MACsPerSec: 4e9, VRAMGB: 1.0, fidelity: 0.80},
		{Name: "whisper-base", Params: 74e6, MACsPerSec: 8e9, VRAMGB: 1.3, fidelity: 0.86},
		{Name: "whisper-small", Params: 244e6, MACsPerSec: 25e9, VRAMGB: 2.2, fidelity: 0.94},
		{Name: "whisper-medium", Params: 769e6, MACsPerSec: 80e9, VRAMGB: 4.5, fidelity: 0.965},
		{Name: "whisper-large", Params: 1550e6, MACsPerSec: 160e9, VRAMGB: 8.0, fidelity: 0.975},
	}
}

// ZooResult is one measured point of the Fig. 7 Pareto study.
type ZooResult struct {
	Model        ZooModel
	PCC          float64
	InferenceSec float64 // runtime per second of audio on the edge device
	OnFront      bool
}

// EvaluateZoo scores every zoo model on a synthetic VCC-2018-like evaluation:
// the model's output feature series is the reference plus fidelity-dependent
// noise, and PCC is the Pearson correlation between the two (higher =
// better transcription). Runtime comes from the edge-device MAC throughput.
// deviceMACsPerSec should be the deployment device's effective throughput.
func EvaluateZoo(deviceMACsPerSec float64, evalSeconds int, seed uint64) ([]ZooResult, error) {
	if deviceMACsPerSec <= 0 {
		return nil, fmt.Errorf("asr: non-positive device throughput")
	}
	rng := tensor.NewRNG(seed ^ 0x2007)
	// Reference series: band-energy trajectory of a long utterance mix.
	synth := audio.NewSynthesizer(seed)
	var wave []float64
	words := audio.Keywords()
	for len(wave) < evalSeconds*audio.SampleRate {
		wave = append(wave, synth.Utter(words[rng.Intn(len(words))], 0.8)...)
	}
	feats := Features(wave)
	ref := make([]float64, len(feats))
	for i, f := range feats {
		for _, v := range f {
			ref[i] += v
		}
	}

	results := make([]ZooResult, 0, len(WhisperZoo()))
	for _, m := range WhisperZoo() {
		out := make([]float64, len(ref))
		noise := 1 - m.fidelity
		var refStd float64
		for _, v := range ref {
			refStd += v * v
		}
		refStd = math.Sqrt(refStd / float64(len(ref)))
		for i, v := range ref {
			out[i] = m.fidelity*v + noise*refStd*rng.NormFloat64()
		}
		pcc := pearson(ref, out)
		results = append(results, ZooResult{
			Model:        m,
			PCC:          pcc,
			InferenceSec: float64(m.MACsPerSec) / deviceMACsPerSec,
		})
	}
	markPareto(results)
	return results, nil
}

// markPareto flags the non-dominated points (maximise PCC, minimise runtime).
func markPareto(rs []ZooResult) {
	for i := range rs {
		dominated := false
		for j := range rs {
			if i == j {
				continue
			}
			if rs[j].PCC > rs[i].PCC && rs[j].InferenceSec <= rs[i].InferenceSec {
				dominated = true
				break
			}
		}
		rs[i].OnFront = !dominated
	}
}

// SelectModel applies the paper's Fig. 7 rule: among Pareto-front models,
// pick the highest-PCC one whose per-second runtime fits the real-time
// budget (runtime < 1 s of compute per second of audio means it keeps up).
func SelectModel(rs []ZooResult, maxInferenceSec float64) (ZooResult, error) {
	best := -1
	for i, r := range rs {
		if !r.OnFront || r.InferenceSec > maxInferenceSec {
			continue
		}
		if best < 0 || r.PCC > rs[best].PCC {
			best = i
		}
	}
	if best < 0 {
		return ZooResult{}, fmt.Errorf("asr: no zoo model fits budget %v s", maxInferenceSec)
	}
	return rs[best], nil
}

func pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
