package asr

import (
	"testing"

	"cognitivearm/internal/audio"
)

func TestSpotterRecognisesEnrolledSpeaker(t *testing.T) {
	spotter := NewSpotter(1)
	synth := audio.NewSynthesizer(1)
	for _, w := range audio.Keywords() {
		got, score := spotter.Recognize(synth.Utter(w, 0.8))
		if got != w {
			t.Fatalf("said %v, recognised %v (score %v)", w, got, score)
		}
		if score < 0.6 {
			t.Fatalf("confidence %v too low for clean speech", score)
		}
	}
}

func TestSpotterGeneralisesAcrossSpeakers(t *testing.T) {
	spotter := NewSpotter(1)
	correct, total := 0, 0
	for seed := uint64(2); seed < 8; seed++ {
		synth := audio.NewSynthesizer(seed)
		for _, w := range audio.Keywords() {
			got, _ := spotter.Recognize(synth.Utter(w, 0.8))
			if got == w {
				correct++
			}
			total++
		}
	}
	if frac := float64(correct) / float64(total); frac < 0.8 {
		t.Fatalf("cross-speaker accuracy %.2f too low (%d/%d)", frac, correct, total)
	}
}

func TestSpotterRejectsNoise(t *testing.T) {
	spotter := NewSpotter(1)
	synth := audio.NewSynthesizer(9)
	got, _ := spotter.Recognize(synth.Noise(0.5, 0.02))
	if got != audio.Silence {
		t.Fatalf("noise recognised as %v", got)
	}
}

func TestFeaturesShape(t *testing.T) {
	synth := audio.NewSynthesizer(3)
	wave := synth.Utter(audio.WordArm, 0.8)
	feats := Features(wave)
	if len(feats) != len(wave)/audio.FrameSize {
		t.Fatalf("frames %d", len(feats))
	}
	for _, f := range feats {
		if len(f) != numBands {
			t.Fatalf("band vector %d", len(f))
		}
		for _, v := range f {
			if v < 0 {
				t.Fatal("negative band energy")
			}
		}
	}
}

func TestGoertzelSelectivity(t *testing.T) {
	// A pure 700 Hz tone should light the 700 Hz probe more than 2 kHz.
	frame := make([]float64, audio.FrameSize)
	for i := range frame {
		frame[i] = osc(700, i)
	}
	at700 := goertzel(frame, 700, audio.SampleRate)
	at2000 := goertzel(frame, 2000, audio.SampleRate)
	if at700 < 5*at2000 {
		t.Fatalf("goertzel not selective: %v vs %v", at700, at2000)
	}
}

func osc(freq float64, i int) float64 {
	return sinApprox(2 * 3.141592653589793 * freq * float64(i) / audio.SampleRate)
}

func sinApprox(x float64) float64 {
	// small helper to avoid importing math just for the test
	for x > 3.141592653589793 {
		x -= 2 * 3.141592653589793
	}
	for x < -3.141592653589793 {
		x += 2 * 3.141592653589793
	}
	// 7th-order Taylor is plenty for test tolerances
	x2 := x * x
	return x * (1 - x2/6*(1-x2/20*(1-x2/42)))
}

// TestFig7Shape verifies the qualitative Figure 7 result: PCC increases with
// model size, runtime increases faster, whisper-small is on the front and is
// selected under the real-time budget while whisper-large is rejected.
func TestFig7Shape(t *testing.T) {
	jetsonMACs := 1.49e9 * 25 // audio encoder batch throughput ≫ GEMV EEG path
	results, err := EvaluateZoo(jetsonMACs, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("zoo size %d", len(results))
	}
	// PCC monotone non-decreasing with model size; runtime strictly rising.
	for i := 1; i < len(results); i++ {
		if results[i].PCC < results[i-1].PCC-0.03 {
			t.Fatalf("PCC should rise with size: %v then %v", results[i-1].PCC, results[i].PCC)
		}
		if results[i].InferenceSec <= results[i-1].InferenceSec {
			t.Fatal("runtime should rise with size")
		}
	}
	byName := map[string]ZooResult{}
	for _, r := range results {
		byName[r.Model.Name] = r
	}
	if !byName["whisper-small"].OnFront {
		t.Fatal("whisper-small should be on the Pareto front")
	}
	// Budget: keep up with real time (1 s of compute per 1 s of audio),
	// which whisper-large's runtime exceeds on this device.
	sel, err := SelectModel(results, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Model.Name != "whisper-small" && sel.Model.Name != "whisper-medium" {
		t.Fatalf("selected %s; paper selects whisper-small", sel.Model.Name)
	}
	if byName["whisper-large"].InferenceSec <= 1.0 {
		t.Fatalf("whisper-large should miss the real-time budget, runtime %v", byName["whisper-large"].InferenceSec)
	}
}

func TestSelectModelNoFit(t *testing.T) {
	results, _ := EvaluateZoo(1e9, 5, 2)
	if _, err := SelectModel(results, 1e-9); err == nil {
		t.Fatal("impossible budget should error")
	}
}

func TestEvaluateZooErrors(t *testing.T) {
	if _, err := EvaluateZoo(0, 5, 1); err == nil {
		t.Fatal("zero throughput should error")
	}
}
