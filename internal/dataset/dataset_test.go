package dataset

import (
	"math"
	"testing"

	"cognitivearm/internal/eeg"
	"cognitivearm/internal/tensor"
)

func testRecording(t *testing.T, totalSec float64) Recording {
	t.Helper()
	return Collect(eeg.NewSubject(0), 0, ShortProtocol(totalSec), 42)
}

func TestCollectStructure(t *testing.T) {
	rec := testRecording(t, 24)
	if len(rec.Signal) != eeg.NumChannels {
		t.Fatalf("channels %d", len(rec.Signal))
	}
	wantSamples := int(24 * eeg.SampleRate)
	if len(rec.Signal[0]) != wantSamples {
		t.Fatalf("samples %d want %d", len(rec.Signal[0]), wantSamples)
	}
	if len(rec.Cues) == 0 {
		t.Fatal("no cues scheduled")
	}
	// Cues alternate task/idle and tile the timeline.
	var cursor float64
	for i, c := range rec.Cues {
		if math.Abs(c.TimeSec-cursor) > 1e-9 {
			t.Fatalf("cue %d at %v, expected %v", i, c.TimeSec, cursor)
		}
		cursor += c.Duration
		if i%2 == 0 && c.Action == eeg.Idle {
			t.Fatalf("cue %d should be a task, got idle", i)
		}
		if i%2 == 1 && c.Action != eeg.Idle {
			t.Fatalf("cue %d should be idle, got %v", i, c.Action)
		}
	}
	if math.Abs(cursor-24) > 1e-6 {
		t.Fatalf("cues cover %v s of 24", cursor)
	}
}

func TestCollectDeterministic(t *testing.T) {
	a := Collect(eeg.NewSubject(1), 0, ShortProtocol(8), 7)
	b := Collect(eeg.NewSubject(1), 0, ShortProtocol(8), 7)
	for c := range a.Signal {
		for i := range a.Signal[c] {
			if a.Signal[c][i] != b.Signal[c][i] {
				t.Fatal("same seed must reproduce the recording")
			}
		}
	}
	c := Collect(eeg.NewSubject(1), 1, ShortProtocol(8), 7)
	if a.Signal[0][100] == c.Signal[0][100] {
		t.Fatal("different sessions should differ")
	}
}

func TestPreprocessRemovesLine(t *testing.T) {
	rec := testRecording(t, 16)
	clean, err := Preprocess(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Signal) != len(rec.Signal) || len(clean.Signal[0]) != len(rec.Signal[0]) {
		t.Fatal("preprocess changed shape")
	}
	// Offsets must shrink dramatically at 50 Hz.
	var rawP, cleanP float64
	for i := range rec.Signal[7] {
		rawP += rec.Signal[7][i] * rec.Signal[7][i]
		cleanP += clean.Signal[7][i] * clean.Signal[7][i]
	}
	if cleanP >= rawP {
		t.Fatalf("preprocessing should reduce total power: %v -> %v", rawP, cleanP)
	}
}

func TestSegmentWindows(t *testing.T) {
	rec := testRecording(t, 16)
	cfg := DefaultSegment(100)
	ws, err := Segment(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("no windows produced")
	}
	for _, w := range ws {
		if w.Data.Rows != 100 || w.Data.Cols != eeg.NumChannels {
			t.Fatalf("window shape %dx%d", w.Data.Rows, w.Data.Cols)
		}
		if w.SubjectID != 0 {
			t.Fatal("subject id lost")
		}
	}
	counts := ClassCounts(ws)
	for _, a := range eeg.Actions() {
		if counts[a] == 0 {
			t.Fatalf("class %v has no windows: %v", a, counts)
		}
	}
}

func TestSegmentRespectsTransition(t *testing.T) {
	rec := testRecording(t, 16)
	// A window may not start before cue + transition.
	cfg := SegmentConfig{Size: 100, Step: 25, TransitionSec: 1.0}
	ws, _ := Segment(rec, cfg)
	// Count: each 4 s task span has (4-1)s*125 - 100 usable start positions.
	spanSamples := int(3 * eeg.SampleRate)
	perSpan := (spanSamples-100)/25 + 1
	if perSpan <= 0 {
		t.Skip("config too tight")
	}
	nSpans := len(rec.Cues)
	if len(ws) > nSpans*perSpan {
		t.Fatalf("too many windows: %d > %d", len(ws), nSpans*perSpan)
	}
}

func TestSegmentErrors(t *testing.T) {
	rec := testRecording(t, 8)
	if _, err := Segment(rec, SegmentConfig{Size: 0, Step: 25}); err == nil {
		t.Fatal("size 0 should error")
	}
	if _, err := Segment(rec, SegmentConfig{Size: 100, Step: 0}); err == nil {
		t.Fatal("step 0 should error")
	}
	if _, err := Segment(Recording{}, DefaultSegment(100)); err == nil {
		t.Fatal("empty recording should error")
	}
}

func TestNormalizeZeroMeanUnitStd(t *testing.T) {
	rec := testRecording(t, 16)
	ws, _ := Segment(rec, DefaultSegment(100))
	st := ComputeStats(ws)
	Normalize(ws, st)
	post := ComputeStats(ws)
	for c := range post.Mean {
		if math.Abs(post.Mean[c]) > 1e-9 {
			t.Fatalf("channel %d mean %v after normalise", c, post.Mean[c])
		}
		if math.Abs(post.Std[c]-1) > 1e-9 {
			t.Fatalf("channel %d std %v after normalise", c, post.Std[c])
		}
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(nil)
	if st.Mean != nil || st.Std != nil {
		t.Fatal("empty stats should be zero value")
	}
}

func TestBalanceEqualizesClasses(t *testing.T) {
	rec := testRecording(t, 32)
	ws, _ := Segment(rec, DefaultSegment(100))
	rng := tensor.NewRNG(1)
	bal := Balance(ws, rng)
	counts := ClassCounts(bal)
	first := -1
	for _, a := range eeg.Actions() {
		if first == -1 {
			first = counts[a]
		}
		if counts[a] != first {
			t.Fatalf("unbalanced after Balance: %v", counts)
		}
	}
	if first == 0 {
		t.Fatal("balance removed everything")
	}
}

func TestBalanceEmpty(t *testing.T) {
	if out := Balance(nil, tensor.NewRNG(1)); out != nil {
		t.Fatal("balancing nothing should give nothing")
	}
}

func TestLOSOFolds(t *testing.T) {
	bySubject := map[int][]Window{}
	for id := 0; id < 3; id++ {
		rec := Collect(eeg.NewSubject(id), 0, ShortProtocol(16), uint64(id))
		ws, _ := Segment(rec, DefaultSegment(100))
		bySubject[id] = ws
	}
	splits := LOSO(bySubject, tensor.NewRNG(2))
	if len(splits) != 3 {
		t.Fatalf("want 3 folds, got %d", len(splits))
	}
	seen := map[int]bool{}
	for _, sp := range splits {
		seen[sp.TestSubject] = true
		for _, w := range sp.Test {
			if w.SubjectID != sp.TestSubject {
				t.Fatal("test fold contaminated with training subject")
			}
		}
		for _, w := range append(append([]Window(nil), sp.Train...), sp.Val...) {
			if w.SubjectID == sp.TestSubject {
				t.Fatal("training fold contains the held-out subject")
			}
		}
		total := len(sp.Train) + len(sp.Val)
		if total == 0 {
			t.Fatal("empty training pool")
		}
		ratio := float64(len(sp.Train)) / float64(total)
		if ratio < 0.75 || ratio > 0.85 {
			t.Fatalf("train fraction %v, want ~0.8", ratio)
		}
	}
	for id := 0; id < 3; id++ {
		if !seen[id] {
			t.Fatalf("subject %d never held out", id)
		}
	}
}

func TestFeatureVector(t *testing.T) {
	m := tensor.New(4, 2)
	// channel 0: 1,2,3,4 ; channel 1: constant 5
	for i := 0; i < 4; i++ {
		m.Set(i, 0, float64(i+1))
		m.Set(i, 1, 5)
	}
	f := FeatureVector(Window{Data: m})
	if len(f) != 10 {
		t.Fatalf("feature length %d want 10", len(f))
	}
	// ch0: mean 2.5, min 1, max 4, var 1.25
	if math.Abs(f[0]-2.5) > 1e-12 || f[2] != 1 || f[3] != 4 || math.Abs(f[4]-1.25) > 1e-12 {
		t.Fatalf("ch0 features wrong: %v", f[:5])
	}
	// ch1: std 0, var 0
	if f[6] != 0 || f[9] != 0 {
		t.Fatalf("constant channel should have zero spread: %v", f[5:])
	}
}

func TestBuildPipeline(t *testing.T) {
	bySubject, err := Build([]int{0, 1}, 1, ShortProtocol(16), 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(bySubject) != 2 {
		t.Fatalf("subjects %d", len(bySubject))
	}
	for id, ws := range bySubject {
		if len(ws) == 0 {
			t.Fatalf("subject %d empty", id)
		}
		counts := ClassCounts(ws)
		if counts[eeg.Left] != counts[eeg.Right] || counts[eeg.Left] != counts[eeg.Idle] {
			t.Fatalf("subject %d unbalanced: %v", id, counts)
		}
	}
}
