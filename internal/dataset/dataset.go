// Package dataset reproduces CognitiveArm's EEG dataset generation and
// annotation pipeline (§III-B): a cue-driven experimental protocol (10 s
// mental task / 10 s idle blocks), auditory-cue-based labelling with
// transition periods, offline preprocessing, sliding-window segmentation
// (window 100–200 samples, step 25), per-subject normalisation, class
// balancing, and leave-one-subject-out splits.
package dataset

import (
	"fmt"
	"math"

	"cognitivearm/internal/eeg"
	"cognitivearm/internal/signal"
	"cognitivearm/internal/tensor"
)

// Cue marks an auditory cue instructing the participant to begin a task.
type Cue struct {
	TimeSec  float64
	Action   eeg.Action
	Duration float64 // seconds the task is held
}

// Recording is one acquisition session: continuous multichannel EEG plus the
// cue schedule that produced it.
type Recording struct {
	SubjectID int
	Session   int
	// Signal is channel-major: Signal[ch][sample], at eeg.SampleRate.
	Signal [][]float64
	Cues   []Cue
	// TruthLatencySec is the subject's actual cue-to-imagery delay, known
	// only to the simulator (used to validate the annotation margins).
	TruthLatencySec float64
}

// Protocol describes the collection structure. The paper uses TaskSec=10,
// RestSec=10, about 5 minutes per session, 3 sessions per subject.
type Protocol struct {
	TaskSec  float64
	RestSec  float64
	TotalSec float64
	// Order cycles through the non-idle tasks; rest blocks are labelled Idle.
	Order []eeg.Action
}

// PaperProtocol returns the collection structure from §III-B1.
func PaperProtocol() Protocol {
	return Protocol{TaskSec: 10, RestSec: 10, TotalSec: 300, Order: []eeg.Action{eeg.Left, eeg.Right}}
}

// ShortProtocol is a scaled-down variant for tests and quick experiments.
func ShortProtocol(totalSec float64) Protocol {
	return Protocol{TaskSec: 4, RestSec: 4, TotalSec: totalSec, Order: []eeg.Action{eeg.Left, eeg.Right}}
}

// Collect simulates one session for the subject: the generator is driven
// through the protocol's cue schedule, including the subject's cue-response
// latency, exactly as a live participant would lag the beep.
func Collect(subject eeg.Subject, session int, proto Protocol, seed uint64) Recording {
	gen := eeg.NewGenerator(subject, seed+uint64(session)*0x9E37)
	fs := eeg.SampleRate
	total := int(proto.TotalSec * fs)
	sig := make([][]float64, eeg.NumChannels)
	for c := range sig {
		sig[c] = make([]float64, total)
	}
	var cues []Cue

	// Build the cue schedule: task, rest, task, rest...
	type span struct {
		start, end int
		action     eeg.Action
	}
	var spans []span
	cursor, orderIdx := 0, 0
	for cursor < total {
		task := proto.Order[orderIdx%len(proto.Order)]
		orderIdx++
		taskLen := int(proto.TaskSec * fs)
		restLen := int(proto.RestSec * fs)
		if cursor+taskLen > total {
			taskLen = total - cursor
		}
		if taskLen > 0 {
			spans = append(spans, span{cursor, cursor + taskLen, task})
			cues = append(cues, Cue{TimeSec: float64(cursor) / fs, Action: task, Duration: float64(taskLen) / fs})
			cursor += taskLen
		}
		if cursor+restLen > total {
			restLen = total - cursor
		}
		if restLen > 0 {
			spans = append(spans, span{cursor, cursor + restLen, eeg.Idle})
			cues = append(cues, Cue{TimeSec: float64(cursor) / fs, Action: eeg.Idle, Duration: float64(restLen) / fs})
			cursor += restLen
		}
	}

	// Drive the generator. The participant switches mental state only after
	// their personal cue latency.
	latencySamples := int(subject.CueLatencySec * fs)
	current := eeg.Idle
	for _, sp := range spans {
		for i := sp.start; i < sp.end; i++ {
			if i >= sp.start+latencySamples {
				current = sp.action
			}
			s := gen.Next(current)
			for c := 0; c < eeg.NumChannels; c++ {
				sig[c][i] = s[c]
			}
		}
	}
	return Recording{SubjectID: subject.ID, Session: session, Signal: sig, Cues: cues, TruthLatencySec: subject.CueLatencySec}
}

// Preprocess applies the paper's offline cleaning chain to every channel:
// zero-phase Butterworth band-pass + notch, then artifact repair. It returns
// a new Recording.
func Preprocess(rec Recording) (Recording, error) {
	pre, err := signal.NewEEGPreprocessor(eeg.SampleRate)
	if err != nil {
		return Recording{}, fmt.Errorf("dataset: %w", err)
	}
	cleaner := signal.NewArtifactCleaner()
	out := rec
	out.Signal = make([][]float64, len(rec.Signal))
	for c := range rec.Signal {
		filtered := pre.FilterOffline(rec.Signal[c])
		repaired, _ := cleaner.Clean(filtered)
		out.Signal[c] = repaired
	}
	return out, nil
}

// Window is one labelled training example: Data is time-major
// (rows = samples, cols = channels).
type Window struct {
	Data      *tensor.Matrix
	Label     eeg.Action
	SubjectID int
}

// SegmentConfig controls sliding-window extraction (§III-B3).
type SegmentConfig struct {
	// Size is the window length in samples (paper sweeps 100–200).
	Size int
	// Step is the hop in samples (paper: 25 = 0.2 s).
	Step int
	// TransitionSec trims this much signal after every cue before windows are
	// taken, absorbing cue-response latency (§III-B2).
	TransitionSec float64
}

// DefaultSegment matches the paper's headline configuration.
func DefaultSegment(windowSize int) SegmentConfig {
	return SegmentConfig{Size: windowSize, Step: 25, TransitionSec: 0.75}
}

// Segment slices a recording into labelled windows. Each cue span contributes
// windows wholly inside [cue+transition, cue+duration), all carrying the
// span's label.
func Segment(rec Recording, cfg SegmentConfig) ([]Window, error) {
	if cfg.Size <= 0 || cfg.Step <= 0 {
		return nil, fmt.Errorf("dataset: invalid segment config %+v", cfg)
	}
	if len(rec.Signal) == 0 {
		return nil, fmt.Errorf("dataset: empty recording")
	}
	fs := eeg.SampleRate
	nch := len(rec.Signal)
	total := len(rec.Signal[0])
	var out []Window
	for _, cue := range rec.Cues {
		start := int((cue.TimeSec + cfg.TransitionSec) * fs)
		end := int((cue.TimeSec + cue.Duration) * fs)
		if end > total {
			end = total
		}
		for w := start; w+cfg.Size <= end; w += cfg.Step {
			m := tensor.New(cfg.Size, nch)
			for t := 0; t < cfg.Size; t++ {
				row := m.Row(t)
				for c := 0; c < nch; c++ {
					row[c] = rec.Signal[c][w+t]
				}
			}
			out = append(out, Window{Data: m, Label: cue.Action, SubjectID: rec.SubjectID})
		}
	}
	return out, nil
}

// Stats holds per-channel normalisation constants for one subject.
type Stats struct {
	Mean, Std []float64
}

// ComputeStats derives per-channel mean/std over a set of windows, the
// per-subject normalisation of §V-A.
func ComputeStats(windows []Window) Stats {
	if len(windows) == 0 {
		return Stats{}
	}
	nch := windows[0].Data.Cols
	mean := make([]float64, nch)
	var count float64
	for _, w := range windows {
		for t := 0; t < w.Data.Rows; t++ {
			row := w.Data.Row(t)
			for c := range row {
				mean[c] += row[c]
			}
		}
		count += float64(w.Data.Rows)
	}
	for c := range mean {
		mean[c] /= count
	}
	std := make([]float64, nch)
	for _, w := range windows {
		for t := 0; t < w.Data.Rows; t++ {
			row := w.Data.Row(t)
			for c := range row {
				d := row[c] - mean[c]
				std[c] += d * d
			}
		}
	}
	for c := range std {
		std[c] = math.Sqrt(std[c] / count)
		if std[c] == 0 {
			std[c] = 1
		}
	}
	return Stats{Mean: mean, Std: std}
}

// StdFor returns the z-score divisor for channel ch, guarded against
// malformed Stats: a missing entry (len(Std) < len(Mean), e.g. a truncated
// gob or a hand-built Stats) or a zero/near-zero deviation (flat training
// channel) clamps to 1 so the divide can neither panic nor emit ±Inf/NaN.
// Both the training-side Normalize and the live ingest path
// (control.Windower.Push) divide through this helper, keeping train and
// serve numerically identical.
//
//cogarm:zeroalloc
func (s Stats) StdFor(ch int) float64 {
	if ch >= len(s.Std) {
		return 1
	}
	if sd := s.Std[ch]; math.Abs(sd) > 1e-12 {
		return sd
	}
	return 1
}

// Normalize z-scores every window in place using the given stats and returns
// the same slice for chaining. Channels beyond len(st.Mean) pass through
// unchanged, and degenerate Std entries clamp to 1 (see Stats.StdFor) —
// the same guards the serving ingest path applies.
func Normalize(windows []Window, st Stats) []Window {
	for _, w := range windows {
		for t := 0; t < w.Data.Rows; t++ {
			row := w.Data.Row(t)
			for c := range row {
				if c >= len(st.Mean) {
					continue
				}
				row[c] = (row[c] - st.Mean[c]) / st.StdFor(c)
			}
		}
	}
	return windows
}

// Balance subsamples so every class has the count of the rarest class,
// preventing classifier bias (§III-D4). Selection is deterministic given rng.
func Balance(windows []Window, rng *tensor.RNG) []Window {
	byClass := map[eeg.Action][]int{}
	for i, w := range windows {
		byClass[w.Label] = append(byClass[w.Label], i)
	}
	minCount := math.MaxInt
	for _, idx := range byClass {
		if len(idx) < minCount {
			minCount = len(idx)
		}
	}
	if minCount == math.MaxInt {
		return nil
	}
	var out []Window
	for _, a := range eeg.Actions() {
		idx := byClass[a]
		if len(idx) == 0 {
			continue
		}
		perm := rng.Perm(len(idx))
		for i := 0; i < minCount; i++ {
			out = append(out, windows[idx[perm[i]]])
		}
	}
	Shuffle(out, rng)
	return out
}

// Shuffle permutes windows in place, deterministically for a given rng.
func Shuffle(windows []Window, rng *tensor.RNG) {
	for i := len(windows) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		windows[i], windows[j] = windows[j], windows[i]
	}
}

// ClassCounts tallies windows per class.
func ClassCounts(windows []Window) map[eeg.Action]int {
	counts := map[eeg.Action]int{}
	for _, w := range windows {
		counts[w.Label]++
	}
	return counts
}

// Split is one leave-one-subject-out fold: Train/Val from the other
// subjects (80:20), Test entirely from the held-out subject (§III-D1).
type Split struct {
	TestSubject      int
	Train, Val, Test []Window
}

// LOSO builds the leave-one-subject-out folds from per-subject window sets.
func LOSO(bySubject map[int][]Window, rng *tensor.RNG) []Split {
	var ids []int
	for id := range bySubject {
		ids = append(ids, id)
	}
	// sort for determinism
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	var splits []Split
	for _, test := range ids {
		var pool []Window
		for _, id := range ids {
			if id != test {
				pool = append(pool, bySubject[id]...)
			}
		}
		pool = append([]Window(nil), pool...)
		Shuffle(pool, rng)
		cut := len(pool) * 8 / 10
		splits = append(splits, Split{
			TestSubject: test,
			Train:       pool[:cut],
			Val:         pool[cut:],
			Test:        append([]Window(nil), bySubject[test]...),
		})
	}
	return splits
}

// FeatureVector extracts the Random-Forest feature set from Table III:
// mean, std, min, max, variance for every channel (5 × channels values).
func FeatureVector(w Window) []float64 {
	return FeatureVectorInto(nil, w)
}

// FeatureVectorInto is FeatureVector appending into dst[:0] — pass a buffer
// with capacity 5×channels (e.g. from a tensor.Workspace) for an
// allocation-free call on the serving hot path. The result is identical to
// FeatureVector.
//
//cogarm:zeroalloc
func FeatureVectorInto(dst []float64, w Window) []float64 {
	nch := w.Data.Cols
	out := dst[:0]
	if cap(out) < 5*nch {
		//cogarm:allow zeroalloc -- feature-buffer warm-up when dst lacks capacity; steady state reuses it
		out = make([]float64, 0, 5*nch)
	}
	for c := 0; c < nch; c++ {
		var sum, sq float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for t := 0; t < w.Data.Rows; t++ {
			v := w.Data.At(t, c)
			sum += v
			sq += v * v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		n := float64(w.Data.Rows)
		mean := sum / n
		variance := sq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		out = append(out, mean, math.Sqrt(variance), lo, hi, variance)
	}
	return out
}

// Build runs the full pipeline for a set of subjects: collect sessions,
// preprocess, segment, normalise per subject, and balance. It returns windows
// grouped by subject, ready for LOSO.
func Build(subjectIDs []int, sessions int, proto Protocol, windowSize int, seed uint64) (map[int][]Window, error) {
	rng := tensor.NewRNG(seed)
	bySubject := make(map[int][]Window, len(subjectIDs))
	for _, id := range subjectIDs {
		subj := eeg.NewSubject(id)
		var all []Window
		for s := 0; s < sessions; s++ {
			rec := Collect(subj, s, proto, seed+uint64(id)*101+uint64(s))
			clean, err := Preprocess(rec)
			if err != nil {
				return nil, err
			}
			ws, err := Segment(clean, DefaultSegment(windowSize))
			if err != nil {
				return nil, err
			}
			all = append(all, ws...)
		}
		Normalize(all, ComputeStats(all))
		bySubject[id] = Balance(all, rng.Fork())
	}
	return bySubject, nil
}
