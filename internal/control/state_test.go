package control

import (
	"reflect"
	"testing"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/tensor"
)

// TestWindowerStateResumesBitwise: a fresh Windower restored from a
// mid-stream snapshot must produce exactly the windows the original would
// have — including IIR filter transients, the property checkpoint/restore
// depends on.
func TestWindowerStateResumesBitwise(t *testing.T) {
	norm := dataset.Stats{Mean: []float64{0.1, -0.2, 0.3}, Std: []float64{1, 2, 0.5}}
	mk := func() *Windower {
		w, err := NewWindower(125, 3, 10, norm)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	rng := tensor.NewRNG(77)
	samples := make([][]float64, 40)
	for i := range samples {
		samples[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}

	ref := mk()
	for _, s := range samples {
		ref.Push(s)
	}

	split := mk()
	for _, s := range samples[:17] { // mid-window, filters warm
		split.Push(s)
	}
	resumed := mk()
	if err := resumed.SetState(split.State()); err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[17:] {
		resumed.Push(s)
	}
	if !reflect.DeepEqual(ref.Window().Data, resumed.Window().Data) {
		t.Fatal("resumed windower diverged from the uninterrupted one")
	}
}

func TestWindowerSetStateRejectsMismatch(t *testing.T) {
	w, err := NewWindower(125, 3, 10, dataset.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	good := w.State()
	for name, st := range map[string]WindowerState{
		"negative filled": {Filled: -1, Window: good.Window, Filter: good.Filter},
		"overfull":        {Filled: 11, Window: good.Window, Filter: good.Filter},
		"short window":    {Filled: 2, Window: good.Window[:5], Filter: good.Filter},
		"missing channel": {Filled: 2, Window: good.Window, Filter: good.Filter[:2]},
		"short filter":    {Filled: 2, Window: good.Window, Filter: [][]float64{{1}, {2}, {3}}},
	} {
		if err := w.SetState(st); err == nil {
			t.Fatalf("%s: invalid state accepted", name)
		}
	}
	if err := w.SetState(good); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}

func TestDebouncerStateRoundTrip(t *testing.T) {
	var d Debouncer
	labels := []eeg.Action{eeg.Left, eeg.Left, eeg.Right, eeg.Left, eeg.Left, eeg.Left, eeg.Left}
	for _, a := range labels {
		d.Observe(a)
	}
	var r Debouncer
	if err := r.SetState(d.State()); err != nil {
		t.Fatal(err)
	}
	// Both must agree on every subsequent observation.
	seq := []eeg.Action{eeg.Left, eeg.Right, eeg.Right, eeg.Right, eeg.Right, eeg.Right, eeg.Idle}
	for i, a := range seq {
		want, got := d.Observe(a), r.Observe(a)
		if got != want {
			t.Fatalf("restored debouncer diverged at observation %d", i)
		}
	}
	if err := r.SetState(DebouncerState{Recent: []int{1}, Head: 0, N: 0}); err == nil {
		t.Fatal("short recent ring accepted")
	}
	if err := r.SetState(DebouncerState{Recent: make([]int, SmoothingWindow), Head: SmoothingWindow, N: 0}); err == nil {
		t.Fatal("out-of-range head accepted")
	}
}
