// Package control closes CognitiveArm's loop (§IV-A): EEG samples stream
// from the board through causal preprocessing into a rolling window; the
// classifier produces action labels at 15 Hz; a voice-selected mode
// multiplexes the three core actions onto the arm's degrees of freedom
// (arm / elbow / fingers, Fig. 6); and serial frames drive the Arduino's
// servos. The package also implements the paper's real-world validation
// protocol (19/20 sessions, §IV-A5) and end-to-end latency accounting.
package control

import (
	"fmt"
	"time"

	"cognitivearm/internal/arm"
	"cognitivearm/internal/audio"
	"cognitivearm/internal/board"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/edge"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
)

// Mode is the voice-selected degree of freedom (§III-F1).
type Mode int

// The three control modes of Fig. 6.
const (
	ModeArm Mode = iota
	ModeElbow
	ModeFingers
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeArm:
		return "arm"
	case ModeElbow:
		return "elbow"
	case ModeFingers:
		return "fingers"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ClassifyRateHz is the paper's action-label rate (§IV-A3).
const ClassifyRateHz = 15

// StepDeg is the per-label angular increment, the "variable amount of
// change in the position of the arm" unit.
const StepDeg = 3.0

// SmoothingWindow is the actuation debounce: the arm moves only when this
// many consecutive labels agree, absorbing the stray labels produced while
// the rolling window still straddles an intent transition.
const SmoothingWindow = 5

// Config assembles a Controller.
type Config struct {
	Board      board.Board
	Classifier models.Classifier
	// Norm holds the subject's training normalisation constants, applied to
	// live windows exactly as during training (§V-A).
	Norm dataset.Stats
	// Device models inference latency; zero value disables edge accounting.
	Device edge.Device
	// InferenceMACs is the classifier's per-window workload for the device
	// model.
	InferenceMACs int64
	// Sparsity/Precision describe the deployed model for latency accounting.
	Sparsity  float64
	Precision edge.Precision
}

// LatencyBreakdown aggregates modelled and measured per-stage latencies.
type LatencyBreakdown struct {
	Ticks            int
	FilterWallSec    float64 // measured Go time in filtering
	InferenceWallSec float64 // measured Go time in classification
	EdgeInferenceSec float64 // modelled Jetson inference time (per tick sum)
	ActuationSec     float64 // modelled serial+servo command latency
}

// PerTick returns the mean modelled end-to-end latency per classification.
func (l LatencyBreakdown) PerTick() float64 {
	if l.Ticks == 0 {
		return 0
	}
	return (l.EdgeInferenceSec + l.ActuationSec) / float64(l.Ticks)
}

// Controller runs the closed loop in simulated time.
type Controller struct {
	cfg     Config
	arduino *arm.Arduino
	win     *Windower // filter + normalise + rolling window ingest stage
	mode    Mode
	// sampleAcc implements the 125/15 fractional samples-per-tick schedule.
	sampleAcc float64
	debounce  Debouncer

	// Predictions counts labels emitted per action.
	Predictions map[eeg.Action]int
	Latency     LatencyBreakdown
}

// New builds a controller. The board must be started by the caller.
func New(cfg Config) (*Controller, error) {
	if cfg.Board == nil || cfg.Classifier == nil {
		return nil, fmt.Errorf("control: board and classifier are required")
	}
	info := cfg.Board.Info()
	win, err := NewWindower(info.SampleRateHz, info.Channels, cfg.Classifier.WindowSize(), cfg.Norm)
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:         cfg,
		arduino:     arm.NewArduino(),
		win:         win,
		Predictions: map[eeg.Action]int{},
	}, nil
}

// Arduino exposes the actuator for inspection.
func (c *Controller) Arduino() *arm.Arduino { return c.arduino }

// Mode returns the active voice-selected mode.
func (c *Controller) Mode() Mode { return c.mode }

// HandleVoice applies a recognised keyword to the mode multiplexer.
func (c *Controller) HandleVoice(w audio.Word) {
	switch w {
	case audio.WordArm:
		c.mode = ModeArm
	case audio.WordElbow:
		c.mode = ModeElbow
	case audio.WordFingers:
		c.mode = ModeFingers
	}
}

// WindowReady reports whether enough samples have accumulated to classify.
func (c *Controller) WindowReady() bool { return c.win.Ready() }

// Tick advances one classification period: pull samples, filter, classify if
// ready, actuate, and advance servo time. It returns the emitted action (or
// Idle before the window fills).
func (c *Controller) Tick() (eeg.Action, error) {
	info := c.cfg.Board.Info()
	c.sampleAcc += info.SampleRateHz / ClassifyRateHz
	n := int(c.sampleAcc)
	c.sampleAcc -= float64(n)

	samples := c.cfg.Board.Read(n)
	t0 := time.Now()
	for _, s := range samples {
		c.win.Push(s.Values)
	}
	c.Latency.FilterWallSec += time.Since(t0).Seconds()

	action := eeg.Idle
	if c.WindowReady() {
		t1 := time.Now()
		action = eeg.Action(c.cfg.Classifier.Predict(c.win.Window()))
		c.Latency.InferenceWallSec += time.Since(t1).Seconds()
		if c.cfg.InferenceMACs > 0 {
			c.Latency.EdgeInferenceSec += c.cfg.Device.Latency(edge.Workload{
				MACs: c.cfg.InferenceMACs, Sparsity: c.cfg.Sparsity, Precision: c.cfg.Precision,
			}).Seconds()
		}
		c.Predictions[action]++
		if c.debounce.Observe(action) {
			c.actuate(action)
		}
	}
	// Servo time advances one tick; serial latency ~1 frame at 115200 baud.
	c.arduino.Step(1.0 / ClassifyRateHz)
	c.Latency.ActuationSec += 5.0*10/115200 + 1.0/ClassifyRateHz/2
	c.Latency.Ticks++
	return action, nil
}

// actuate maps (mode, action) to servo deltas per Fig. 6.
func (c *Controller) actuate(a eeg.Action) {
	if a == eeg.Idle {
		return
	}
	dir := 1.0 // Right
	if a == eeg.Left {
		dir = -1
	}
	var frames []arm.Frame
	switch c.mode {
	case ModeArm: // raise / lower
		frames = append(frames, arm.Frame{Channel: arm.ChanArm, AngleDeg: c.arduino.Target(arm.ChanArm) + dir*StepDeg})
	case ModeElbow: // rotate CW / ACW
		frames = append(frames, arm.Frame{Channel: arm.ChanElbow, AngleDeg: c.arduino.Target(arm.ChanElbow) + dir*StepDeg})
	case ModeFingers: // close / open
		for _, ch := range arm.FingerChannels() {
			frames = append(frames, arm.Frame{Channel: ch, AngleDeg: c.arduino.Target(ch) + dir*StepDeg})
		}
	}
	for _, f := range frames {
		b := f.Encode()
		c.arduino.Write(b[:])
	}
}

// SessionResult reports one real-world validation session (§IV-A5).
type SessionResult struct {
	Intents      int
	CorrectMoves int
	Success      bool
}

// RunValidationSession reproduces the paper's protocol: the participant
// holds a sequence of intents (announced verbally in the paper; here the
// ground truth drives the simulated board), the loop runs, and the session
// succeeds if every intent block moves the arm in the intended direction.
// ticksPerIntent controls how long each intent is held.
func RunValidationSession(c *Controller, intents []eeg.Action, ticksPerIntent int) (SessionResult, error) {
	res := SessionResult{Intents: len(intents)}
	for _, intent := range intents {
		// Each block starts from the rest pose, as each live trial did —
		// otherwise earlier blocks park the servos at their limits and later
		// movement has nowhere to go.
		if err := arm.SendPose(c.arduino, arm.PoseRest); err != nil {
			return res, err
		}
		c.arduino.Step(3)
		c.cfg.Board.SetState(intent)
		// Transition period (§III-B2): let the rolling window flush the
		// previous intent before scoring, as the live protocol's cue-to-task
		// margin does. One window plus the debounce depth suffices.
		warmup := c.win.Size()/8 + SmoothingWindow
		for t := 0; t < warmup; t++ {
			if _, err := c.Tick(); err != nil {
				return res, err
			}
		}
		before := c.dofPosition()
		counts := map[eeg.Action]int{}
		for t := 0; t < ticksPerIntent; t++ {
			a, err := c.Tick()
			if err != nil {
				return res, err
			}
			if c.WindowReady() {
				counts[a]++
			}
		}
		moved := c.dofPosition() - before
		// Scoring follows the live protocol: the participant's verbal
		// confirmation is compared against the emitted labels, i.e. the
		// majority label must match the intent; non-idle intents must also
		// move the arm the right way.
		majority := eeg.Idle
		bestCount := -1
		for _, a := range eeg.Actions() {
			if counts[a] > bestCount {
				majority, bestCount = a, counts[a]
			}
		}
		correct := majority == intent
		switch intent {
		case eeg.Right:
			correct = correct && moved > 0
		case eeg.Left:
			correct = correct && moved < 0
		}
		if correct {
			res.CorrectMoves++
		}
	}
	res.Success = res.CorrectMoves == res.Intents
	return res, nil
}

// dofPosition reads the active mode's primary servo target.
func (c *Controller) dofPosition() float64 {
	switch c.mode {
	case ModeElbow:
		return c.arduino.Target(arm.ChanElbow)
	case ModeFingers:
		return c.arduino.Target(arm.ChanIndex)
	default:
		return c.arduino.Target(arm.ChanArm)
	}
}
