package control

import (
	"fmt"

	"cognitivearm/internal/eeg"
)

// WindowerState is the portable snapshot of a Windower: everything beyond the
// construction parameters (rate, channels, window size, norm stats) that the
// next Push depends on. It is what internal/checkpoint persists per session so
// a restarted fleet emits bitwise-identical labels: the partially filled
// rolling window and the per-channel causal filter delay state.
type WindowerState struct {
	// Filled is the number of valid rows currently in the rolling window.
	Filled int
	// Window is the row-major contents of the rolling buffer
	// (WindowSize × Channels values, only the first Filled rows meaningful).
	Window []float64
	// Filter holds each channel's preprocessor delay state
	// (signal.EEGPreprocessor.State, one slice per channel).
	Filter [][]float64
}

// State exports the Windower's resumable state. The returned slices are
// copies; mutating them does not affect the Windower.
func (w *Windower) State() WindowerState {
	st := WindowerState{
		Filled: w.filled,
		Window: append([]float64(nil), w.window.Data...),
		Filter: make([][]float64, len(w.pre)),
	}
	for ch, p := range w.pre {
		st.Filter[ch] = p.State()
	}
	return st
}

// SetState restores a snapshot taken by State into a Windower built with the
// same construction parameters. It rejects snapshots whose dimensions do not
// match the receiver — a mismatched window length, channel count or filter
// order means the checkpoint was taken from a differently configured session.
func (w *Windower) SetState(st WindowerState) error {
	if st.Filled < 0 || st.Filled > w.window.Rows {
		return fmt.Errorf("control: windower state filled=%d, window holds %d rows", st.Filled, w.window.Rows)
	}
	if len(st.Window) != len(w.window.Data) {
		return fmt.Errorf("control: windower state has %d window values, want %d", len(st.Window), len(w.window.Data))
	}
	if len(st.Filter) != len(w.pre) {
		return fmt.Errorf("control: windower state has %d filter channels, want %d", len(st.Filter), len(w.pre))
	}
	for ch, p := range w.pre {
		if err := p.SetState(st.Filter[ch]); err != nil {
			return fmt.Errorf("control: channel %d: %w", ch, err)
		}
	}
	copy(w.window.Data, st.Window)
	w.filled = st.Filled
	return nil
}

// DebouncerState is the portable snapshot of a Debouncer's label history.
type DebouncerState struct {
	// Recent is the label ring in storage order (SmoothingWindow entries).
	Recent []int
	// Head is the next write slot; N is the saturating observed count.
	Head, N int
}

// State exports the debounce history.
func (d *Debouncer) State() DebouncerState {
	st := DebouncerState{Recent: make([]int, SmoothingWindow), Head: d.head, N: d.n}
	for i, a := range d.recent {
		st.Recent[i] = int(a)
	}
	return st
}

// SetState restores a snapshot taken by State, validating ranges so a
// corrupted checkpoint cannot put the ring cursor out of bounds.
func (d *Debouncer) SetState(st DebouncerState) error {
	if len(st.Recent) != SmoothingWindow {
		return fmt.Errorf("control: debouncer state has %d labels, want %d", len(st.Recent), SmoothingWindow)
	}
	if st.Head < 0 || st.Head >= SmoothingWindow || st.N < 0 || st.N > SmoothingWindow {
		return fmt.Errorf("control: debouncer state head=%d n=%d out of range", st.Head, st.N)
	}
	for i, a := range st.Recent {
		d.recent[i] = eeg.Action(a)
	}
	d.head = st.Head
	d.n = st.N
	return nil
}
