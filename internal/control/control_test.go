package control

import (
	"math"
	"testing"

	"cognitivearm/internal/arm"
	"cognitivearm/internal/audio"
	"cognitivearm/internal/board"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/edge"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/tensor"
)

// buildController trains a fast RF on subject 0 and wires the loop up.
func buildController(t *testing.T) *Controller {
	t.Helper()
	subj := eeg.NewSubject(0)
	rec := dataset.Collect(subj, 0, dataset.ShortProtocol(48), 11)
	clean, err := dataset.Preprocess(rec)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := dataset.Segment(clean, dataset.DefaultSegment(100))
	if err != nil {
		t.Fatal(err)
	}
	stats := dataset.ComputeStats(ws)
	dataset.Normalize(ws, stats)
	ws = dataset.Balance(ws, tensor.NewRNG(1))
	cut := len(ws) * 8 / 10
	spec := models.Spec{Family: models.FamilyRF, WindowSize: 100, Trees: 40, MaxDepth: 12}
	clf, res, err := models.Train(spec, ws[:cut], ws[cut:], models.TrainOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValAcc < 0.8 {
		t.Fatalf("control-test classifier too weak: %v", res.ValAcc)
	}
	b := board.NewSyntheticCyton(subj, 77, false)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Stop() })
	ctrl, err := New(Config{
		Board:         b,
		Classifier:    clf,
		Norm:          stats,
		Device:        edge.JetsonOrinNano(),
		InferenceMACs: models.OpsPerInference(spec),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func TestNewRequiresParts(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
}

func TestVoiceModeSwitch(t *testing.T) {
	ctrl := buildController(t)
	if ctrl.Mode() != ModeArm {
		t.Fatal("default mode should be arm")
	}
	ctrl.HandleVoice(audio.WordFingers)
	if ctrl.Mode() != ModeFingers {
		t.Fatal("voice should switch to fingers")
	}
	ctrl.HandleVoice(audio.WordElbow)
	if ctrl.Mode() != ModeElbow {
		t.Fatal("voice should switch to elbow")
	}
	ctrl.HandleVoice(audio.Silence) // no-op
	if ctrl.Mode() != ModeElbow {
		t.Fatal("silence must not switch modes")
	}
}

func TestWindowFillsThenClassifies(t *testing.T) {
	ctrl := buildController(t)
	ctrl.cfg.Board.SetState(eeg.Right)
	ticks := 0
	for !ctrl.WindowReady() {
		if _, err := ctrl.Tick(); err != nil {
			t.Fatal(err)
		}
		ticks++
		if ticks > 100 {
			t.Fatal("window never filled")
		}
	}
	// 100-sample window at ~8.3 samples/tick ≈ 12 ticks.
	if ticks < 10 || ticks > 15 {
		t.Fatalf("window filled after %d ticks, expected ~12", ticks)
	}
}

func TestRightImageryRaisesArm(t *testing.T) {
	ctrl := buildController(t)
	ctrl.cfg.Board.SetState(eeg.Right)
	start := ctrl.Arduino().Target(arm.ChanArm)
	for i := 0; i < 60; i++ {
		if _, err := ctrl.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctrl.Arduino().Target(arm.ChanArm); got <= start {
		t.Fatalf("right imagery should raise the arm: %v -> %v (predictions %v)",
			start, got, ctrl.Predictions)
	}
}

func TestLeftImageryClosesVsOpensFingers(t *testing.T) {
	ctrl := buildController(t)
	ctrl.HandleVoice(audio.WordFingers)
	// Pre-close fingers so "open" has room.
	for _, ch := range arm.FingerChannels() {
		f := arm.Frame{Channel: ch, AngleDeg: 45}
		b := f.Encode()
		ctrl.Arduino().Write(b[:])
	}
	ctrl.cfg.Board.SetState(eeg.Left)
	for i := 0; i < 60; i++ {
		if _, err := ctrl.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctrl.Arduino().Target(arm.ChanIndex); got >= 45 {
		t.Fatalf("left imagery in fingers mode should open the hand: %v", got)
	}
}

func TestIdleHoldsPosition(t *testing.T) {
	ctrl := buildController(t)
	ctrl.cfg.Board.SetState(eeg.Idle)
	// Fill window first.
	for i := 0; i < 20; i++ {
		ctrl.Tick()
	}
	start := ctrl.Arduino().Target(arm.ChanArm)
	for i := 0; i < 45; i++ {
		ctrl.Tick()
	}
	moved := ctrl.Arduino().Target(arm.ChanArm) - start
	if moved > 2*StepDeg || moved < -2*StepDeg {
		t.Fatalf("idle should hold position, drifted %v degrees", moved)
	}
}

func TestLatencyAccounting(t *testing.T) {
	ctrl := buildController(t)
	ctrl.cfg.Board.SetState(eeg.Right)
	for i := 0; i < 30; i++ {
		ctrl.Tick()
	}
	l := ctrl.Latency
	if l.Ticks != 30 {
		t.Fatalf("ticks %d", l.Ticks)
	}
	if l.EdgeInferenceSec <= 0 || l.ActuationSec <= 0 {
		t.Fatalf("latency model not accounted: %+v", l)
	}
	// RF inference is tiny: per-tick end-to-end must fit the 15 Hz budget.
	if per := l.PerTick(); per > 1.0/ClassifyRateHz+0.02 {
		t.Fatalf("per-tick latency %v blows the 15 Hz budget", per)
	}
}

// TestRealWorldValidation reproduces §IV-A5: 20 sessions of intent blocks;
// the paper reports 19/20 successful. We require ≥ 17 to absorb simulation
// randomness while preserving the "nearly always works" shape.
func TestRealWorldValidation(t *testing.T) {
	ctrl := buildController(t)
	rng := tensor.NewRNG(5)
	successes := 0
	const sessions = 20
	for s := 0; s < sessions; s++ {
		intents := make([]eeg.Action, 3)
		for i := range intents {
			intents[i] = eeg.Action(rng.Intn(3))
		}
		res, err := RunValidationSession(ctrl, intents, 40)
		if err != nil {
			t.Fatal(err)
		}
		if res.Success {
			successes++
		}
	}
	if successes < 17 {
		t.Fatalf("only %d/%d sessions succeeded; paper reports 19/20", successes, sessions)
	}
	t.Logf("real-world validation: %d/%d sessions", successes, sessions)
}

func TestModeString(t *testing.T) {
	if ModeArm.String() != "arm" || ModeElbow.String() != "elbow" || ModeFingers.String() != "fingers" {
		t.Fatal("mode names")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should format")
	}
}

// TestWindowerMalformedStats feeds a Windower Stats with a flat channel
// (zero std) and a Std slice shorter than Mean — the shapes a truncated gob
// or degenerate training set produces. Push must neither panic nor write
// non-finite values into the rolling window.
func TestWindowerMalformedStats(t *testing.T) {
	norm := dataset.Stats{
		Mean: []float64{0.5, -1.0, 2.0},
		Std:  []float64{0, 2}, // channel 0 flat, channel 2 missing entirely
	}
	w, err := NewWindower(eeg.SampleRate, 3, 4, norm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if !w.Push([]float64{1.5, -0.25, 3.0}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if !w.Ready() {
		t.Fatal("window should be full")
	}
	for i, v := range w.Window().Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("window element %d is %v; malformed Stats must clamp, not poison", i, v)
		}
	}
}

// TestDebouncerRingMatchesReference drives the fixed-size ring and the
// original append+reslice formulation through the same random label stream
// and demands identical agreement decisions at every step.
func TestDebouncerRingMatchesReference(t *testing.T) {
	var d Debouncer
	var recent []eeg.Action
	ref := func(a eeg.Action) bool {
		recent = append(recent, a)
		if len(recent) > SmoothingWindow {
			recent = recent[1:]
		}
		if len(recent) < SmoothingWindow {
			return false
		}
		votes := 0
		for _, r := range recent {
			if r == a {
				votes++
			}
		}
		return votes >= SmoothingWindow-1
	}
	rng := tensor.NewRNG(9)
	for i := 0; i < 1000; i++ {
		a := eeg.Action(rng.Intn(eeg.NumActions))
		if got, want := d.Observe(a), ref(a); got != want {
			t.Fatalf("step %d: ring says %v, reference says %v", i, got, want)
		}
	}
}

// TestWindowInto pins the copy-out contract: the returned matrix equals the
// live window, survives subsequent pushes untouched, reuses a well-shaped
// dst, and replaces a mis-shaped one.
func TestWindowInto(t *testing.T) {
	w, err := NewWindower(125, 2, 4, dataset.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w.Push([]float64{float64(i), float64(-i)})
	}
	snap := w.WindowInto(nil)
	if snap == w.Window() {
		t.Fatal("WindowInto must not return the live buffer")
	}
	live := append([]float64(nil), w.Window().Data...)
	for i := range live {
		if snap.Data[i] != live[i] {
			t.Fatalf("copy element %d: %v != live %v", i, snap.Data[i], live[i])
		}
	}
	w.Push([]float64{99, 99}) // live window rolls; the copy must not move
	if snap.Data[0] != live[0] || snap.Data[len(live)-1] != live[len(live)-1] {
		t.Fatal("WindowInto copy mutated by a later Push")
	}
	if again := w.WindowInto(snap); again != snap {
		t.Fatal("well-shaped dst must be reused, not reallocated")
	}
	for i, v := range w.Window().Data {
		if snap.Data[i] != v {
			t.Fatalf("reused dst element %d not refreshed: %v != live %v", i, snap.Data[i], v)
		}
	}
	if fixed := w.WindowInto(tensor.New(1, 1)); fixed.Rows != 4 || fixed.Cols != 2 {
		t.Fatal("mis-shaped dst must be replaced with a correctly shaped matrix")
	}
}
