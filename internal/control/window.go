package control

import (
	"fmt"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/signal"
	"cognitivearm/internal/tensor"
)

// Windower is the ingest stage of a closed loop: per-channel causal
// filtering, training-stats normalisation, and a WindowSize×Channels rolling
// buffer of the most recent samples. It was extracted from Controller so the
// fleet sessions of internal/serve can run the identical signal path without
// carrying a Controller's actuator and latency accounting. A Windower is
// single-session state and must not be shared across goroutines.
type Windower struct {
	pre    []*signal.EEGPreprocessor
	norm   dataset.Stats
	window *tensor.Matrix
	filled int
}

// NewWindower builds the ingest stage for one session. norm holds the
// subject's training normalisation constants, applied to live samples
// exactly as during training (§V-A); a zero-value Stats disables
// normalisation.
func NewWindower(sampleRateHz float64, channels, windowSize int, norm dataset.Stats) (*Windower, error) {
	if channels < 1 || windowSize < 1 {
		return nil, fmt.Errorf("control: windower needs positive channels (%d) and window (%d)", channels, windowSize)
	}
	pre := make([]*signal.EEGPreprocessor, channels)
	for i := range pre {
		p, err := signal.NewEEGPreprocessor(sampleRateHz)
		if err != nil {
			return nil, fmt.Errorf("control: %w", err)
		}
		pre[i] = p
	}
	return &Windower{pre: pre, norm: norm, window: tensor.New(windowSize, channels)}, nil
}

// Push filters one raw sample and appends it to the rolling window. Samples
// with fewer values than the window's channel count are dropped (reported
// false): network-fed sessions receive attacker-controlled channel counts on
// the wire, and a short sample must not panic the serving shard.
//
//cogarm:zeroalloc
func (w *Windower) Push(values []float64) bool {
	if len(values) < w.window.Cols {
		return false
	}
	// Shift up (cheap for the window sizes in play; avoids reindexing).
	if w.filled == w.window.Rows {
		copy(w.window.Data, w.window.Data[w.window.Cols:])
		w.filled--
	}
	row := w.window.Row(w.filled)
	for ch := range row {
		v := values[ch]
		v = w.pre[ch].Process(v)
		if ch < len(w.norm.Mean) {
			// StdFor guards the divisor: a Stats with len(Std) < len(Mean)
			// or a flat training channel (zero std) must neither panic the
			// serving shard nor feed ±Inf/NaN to every classifier downstream.
			v = (v - w.norm.Mean[ch]) / w.norm.StdFor(ch)
		}
		row[ch] = v
	}
	w.filled++
	return true
}

// Ready reports whether enough samples have accumulated to classify.
//
//cogarm:zeroalloc
func (w *Windower) Ready() bool { return w.filled == w.window.Rows }

// Window exposes the rolling buffer for classification without copying. The
// matrix is owned by the Windower and overwritten by subsequent Push calls;
// classify before pushing more samples, or use WindowInto for a stable copy.
// The serving shard reads it zero-copy: within one tick, every ready window
// is classified before any session receives further pushes, so the aliasing
// is safe (see ARCHITECTURE.md "Memory model").
//
//cogarm:zeroalloc
func (w *Windower) Window() *tensor.Matrix { return w.window }

// WindowInto copies the rolling buffer into dst and returns it, allocating
// only when dst is nil or mis-shaped. Callers that must hold a window across
// subsequent Push calls (deferred classification, cross-tick buffering) use
// this with a reused dst instead of cloning Window() every tick.
func (w *Windower) WindowInto(dst *tensor.Matrix) *tensor.Matrix {
	if dst == nil || dst.Rows != w.window.Rows || dst.Cols != w.window.Cols {
		dst = tensor.New(w.window.Rows, w.window.Cols)
	}
	copy(dst.Data, w.window.Data)
	return dst
}

// Size returns the window length in samples.
func (w *Windower) Size() int { return w.window.Rows }

// Debouncer is the actuation debounce shared by the single-subject
// Controller and the serving fleet's sessions: a label only counts as agreed
// when it holds a SmoothingWindow−1 supermajority over the last
// SmoothingWindow labels, absorbing the strays produced while the rolling
// window straddles an intent transition. The history lives in a fixed-size
// ring: the previous append+reslice pattern shifted the backing array on
// every decoded label, churning memory for the lifetime of a serving
// session. The zero value is ready to use.
type Debouncer struct {
	recent [SmoothingWindow]eeg.Action
	head   int // next write slot
	n      int // labels observed, saturating at SmoothingWindow
}

// Observe records one decoded label and reports whether the debounce agrees
// on it.
//
//cogarm:zeroalloc
func (d *Debouncer) Observe(a eeg.Action) bool {
	d.recent[d.head] = a
	d.head++
	if d.head == SmoothingWindow {
		d.head = 0
	}
	if d.n < SmoothingWindow {
		d.n++
		if d.n < SmoothingWindow {
			return false
		}
	}
	votes := 0
	for _, r := range d.recent {
		if r == a {
			votes++
		}
	}
	return votes >= SmoothingWindow-1
}
