package audio

import (
	"testing"
)

func TestUtterProducesAudio(t *testing.T) {
	s := NewSynthesizer(1)
	for _, w := range Keywords() {
		wave := s.Utter(w, 0.8)
		if len(wave) < SampleRate/10 {
			t.Fatalf("%v too short: %d samples", w, len(wave))
		}
		// Speech must be louder than the noise floor somewhere.
		peak := 0.0
		for _, v := range wave {
			if v > peak {
				peak = v
			}
		}
		if peak < 0.1 {
			t.Fatalf("%v peak %v too quiet", w, peak)
		}
	}
}

func TestUtterSilenceIsQuiet(t *testing.T) {
	s := NewSynthesizer(2)
	wave := s.Utter(Silence, 1)
	for _, e := range FrameEnergies(wave) {
		if e > 0.05 {
			t.Fatalf("silence frame energy %v", e)
		}
	}
}

func TestSynthesizerDeterminism(t *testing.T) {
	a := NewSynthesizer(3).Utter(WordArm, 0.8)
	b := NewSynthesizer(3).Utter(WordArm, 0.8)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce the waveform")
		}
	}
}

func TestWordStrings(t *testing.T) {
	if WordArm.String() != "arm" || WordElbow.String() != "elbow" ||
		WordFingers.String() != "fingers" || Silence.String() != "silence" {
		t.Fatal("word names")
	}
	if Word(99).String() != "unknown" {
		t.Fatal("unknown word")
	}
}

func TestFrameEnergies(t *testing.T) {
	wave := make([]float64, FrameSize*3)
	for i := FrameSize; i < 2*FrameSize; i++ {
		wave[i] = 1
	}
	e := FrameEnergies(wave)
	if len(e) != 3 {
		t.Fatalf("frames %d", len(e))
	}
	if e[0] != 0 || e[2] != 0 || e[1] < 0.99 {
		t.Fatalf("energies %v", e)
	}
}

func TestVADDetectsSpeechOnly(t *testing.T) {
	s := NewSynthesizer(4)
	v := NewVAD()
	speech := s.Utter(WordElbow, 0.8)
	segs := v.DetectSegments(speech)
	if len(segs) == 0 {
		t.Fatal("VAD missed speech")
	}
	noise := s.Noise(1.0, 0.01)
	if segs := v.DetectSegments(noise); len(segs) != 0 {
		t.Fatalf("VAD false-triggered on noise: %v", segs)
	}
}

func TestVADHysteresis(t *testing.T) {
	v := NewVAD()
	// One loud frame alone must not trigger (attack = 2).
	if v.ProcessFrame(1.0) {
		t.Fatal("single frame should not trigger")
	}
	if !v.ProcessFrame(1.0) {
		t.Fatal("second loud frame should trigger")
	}
	// A single quiet frame must not release (release = 5).
	if !v.ProcessFrame(0.0) {
		t.Fatal("one quiet frame should not release")
	}
	for i := 0; i < 5; i++ {
		v.ProcessFrame(0.0)
	}
	if v.Active() {
		t.Fatal("sustained quiet should release")
	}
	if v.Triggers != 1 {
		t.Fatalf("trigger count %d", v.Triggers)
	}
}

func TestVADResourceGating(t *testing.T) {
	// The point of VAD (§III-F2): ASR work is proportional to triggered
	// segments, not total audio.
	s := NewSynthesizer(5)
	v := NewVAD()
	var wave []float64
	wave = append(wave, s.Noise(2, 0.01)...)
	wave = append(wave, s.Utter(WordArm, 0.8)...)
	wave = append(wave, s.Noise(2, 0.01)...)
	segs := v.DetectSegments(wave)
	if len(segs) != 1 {
		t.Fatalf("want exactly 1 speech segment, got %d", len(segs))
	}
	totalFrames := len(wave) / FrameSize
	activeFrames := segs[0][1] - segs[0][0]
	if activeFrames >= totalFrames/2 {
		t.Fatalf("VAD should gate most audio out: %d of %d frames active", activeFrames, totalFrames)
	}
}
