// Package audio synthesises the microphone input of CognitiveArm's voice
// channel and provides the Voice Activity Detection (VAD) gate of §III-F2.
// Speech-like waveforms are built from pitch harmonics shaped by per-word
// formant envelopes; the VAD is a frame-energy detector with attack/release
// hysteresis, triggering the (expensive) ASR model only when speech is
// present.
package audio

import (
	"math"

	"cognitivearm/internal/tensor"
)

// SampleRate is the audio acquisition rate in Hz.
const SampleRate = 16000

// FrameSize is the VAD/ASR analysis frame (20 ms).
const FrameSize = 320

// Word is a spoken command in the CognitiveArm vocabulary (§III-F1: the DoF
// mode-switch keywords).
type Word int

// Vocabulary: the three mode keywords plus silence/noise.
const (
	Silence Word = iota
	WordArm
	WordElbow
	WordFingers
)

// String implements fmt.Stringer.
func (w Word) String() string {
	switch w {
	case Silence:
		return "silence"
	case WordArm:
		return "arm"
	case WordElbow:
		return "elbow"
	case WordFingers:
		return "fingers"
	default:
		return "unknown"
	}
}

// Keywords returns the non-silence vocabulary.
func Keywords() []Word { return []Word{WordArm, WordElbow, WordFingers} }

// formantTrack describes a word's acoustic signature: per-syllable formant
// centre frequencies and durations. Distinct tracks make the keywords
// separable, standing in for real speech.
type formantTrack struct {
	freqs     []float64 // formant centre per syllable (Hz)
	durations []float64 // seconds per syllable
}

var tracks = map[Word]formantTrack{
	WordArm:     {freqs: []float64{350}, durations: []float64{0.35}},
	WordElbow:   {freqs: []float64{800, 1300}, durations: []float64{0.2, 0.2}},
	WordFingers: {freqs: []float64{2400, 2900}, durations: []float64{0.15, 0.25}},
}

// Synthesizer generates deterministic utterances for a given speaker seed.
type Synthesizer struct {
	rng      *tensor.RNG
	pitchHz  float64
	noiseAmp float64
}

// NewSynthesizer creates a speaker with a reproducible voice.
func NewSynthesizer(seed uint64) *Synthesizer {
	rng := tensor.NewRNG(seed ^ 0xA0D10)
	return &Synthesizer{
		rng:      rng,
		pitchHz:  100 + 80*rng.Float64(),
		noiseAmp: 0.01,
	}
}

// Utter renders the word as a waveform at the given loudness (0–1], padded
// with silence on both sides.
func (s *Synthesizer) Utter(w Word, loudness float64) []float64 {
	padSec := 0.1
	if w == Silence {
		return s.Noise(0.5, s.noiseAmp)
	}
	track := tracks[w]
	var wave []float64
	wave = append(wave, s.Noise(padSec, s.noiseAmp)...)
	for i, f := range track.freqs {
		n := int(track.durations[i] * SampleRate)
		for j := 0; j < n; j++ {
			t := float64(j) / SampleRate
			env := math.Sin(math.Pi * float64(j) / float64(n)) // syllable envelope
			v := 0.0
			// Pitch harmonics weighted by distance to the formant.
			for h := 1; h <= 32; h++ {
				hf := s.pitchHz * float64(h)
				d := (hf - f) / 250
				weight := math.Exp(-d * d)
				v += weight * math.Sin(2*math.Pi*hf*t)
			}
			v = loudness * env * v / 4
			v += s.noiseAmp * s.rng.NormFloat64()
			wave = append(wave, v)
		}
	}
	wave = append(wave, s.Noise(padSec, s.noiseAmp)...)
	return wave
}

// Noise renders dur seconds of background noise at the given amplitude.
func (s *Synthesizer) Noise(dur, amp float64) []float64 {
	n := int(dur * SampleRate)
	out := make([]float64, n)
	for i := range out {
		out[i] = amp * s.rng.NormFloat64()
	}
	return out
}

// FrameEnergies returns per-frame RMS energies of the waveform.
func FrameEnergies(wave []float64) []float64 {
	nFrames := len(wave) / FrameSize
	out := make([]float64, nFrames)
	for i := 0; i < nFrames; i++ {
		var s float64
		for j := i * FrameSize; j < (i+1)*FrameSize; j++ {
			s += wave[j] * wave[j]
		}
		out[i] = math.Sqrt(s / FrameSize)
	}
	return out
}

// VAD is an energy detector with hysteresis: activation requires Attack
// consecutive loud frames, deactivation Release consecutive quiet ones
// (§III-F2).
type VAD struct {
	// Threshold is the RMS energy above which a frame counts as speech.
	Threshold float64
	// Attack / Release are the hysteresis frame counts.
	Attack, Release int

	active   bool
	loudRun  int
	quietRun int
	// Triggers counts rising edges (speech onsets) seen so far.
	Triggers int
}

// NewVAD returns a detector tuned for the synthesizer's levels.
func NewVAD() *VAD {
	return &VAD{Threshold: 0.05, Attack: 2, Release: 5}
}

// ProcessFrame consumes one frame's energy and returns whether speech is
// currently active.
func (v *VAD) ProcessFrame(energy float64) bool {
	if energy >= v.Threshold {
		v.loudRun++
		v.quietRun = 0
		if !v.active && v.loudRun >= v.Attack {
			v.active = true
			v.Triggers++
		}
	} else {
		v.quietRun++
		v.loudRun = 0
		if v.active && v.quietRun >= v.Release {
			v.active = false
		}
	}
	return v.active
}

// Active reports the current detector state.
func (v *VAD) Active() bool { return v.active }

// Reset returns the detector to idle.
func (v *VAD) Reset() {
	v.active = false
	v.loudRun, v.quietRun = 0, 0
}

// DetectSegments runs the VAD over a whole waveform and returns the active
// frame spans as [start, end) frame indices.
func (v *VAD) DetectSegments(wave []float64) [][2]int {
	v.Reset()
	energies := FrameEnergies(wave)
	var segs [][2]int
	open := -1
	for i, e := range energies {
		active := v.ProcessFrame(e)
		if active && open < 0 {
			open = i
		}
		if !active && open >= 0 {
			segs = append(segs, [2]int{open, i})
			open = -1
		}
	}
	if open >= 0 {
		segs = append(segs, [2]int{open, len(energies)})
	}
	return segs
}
