package serve_test

import (
	"fmt"
	"os"

	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/rf"
	"cognitivearm/internal/serve"
	"cognitivearm/internal/stream"
	"cognitivearm/internal/tensor"
)

// tinyForest trains a small shared decoder directly on synthetic feature
// vectors — a stand-in for core.Pipeline.TrainModel that keeps the examples
// fast and deterministic.
func tinyForest(windowSize int) models.Classifier {
	rng := tensor.NewRNG(8)
	X := make([][]float64, 90)
	y := make([]int, len(X))
	for i := range X {
		X[i] = make([]float64, 5*eeg.NumChannels)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		y[i] = i % eeg.NumActions
	}
	forest, err := rf.Fit(X, y, eeg.NumActions, rf.Config{Trees: 5, MaxDepth: 4, MinSamplesSplit: 2, Seed: 2})
	if err != nil {
		panic(err)
	}
	return &models.RFClassifier{Forest: forest,
		Spec: models.Spec{Family: models.FamilyRF, WindowSize: windowSize, Trees: 5, MaxDepth: 4}}
}

// Example runs a minimal fleet: one shared registry model, one ring-fed
// session, caller-paced ticks.
func Example() {
	reg := serve.NewRegistry()
	reg.GetOrBuild("shared", func() (models.Classifier, int64, error) {
		return tinyForest(100), 0, nil
	})
	hub, err := serve.NewHub(serve.Config{Shards: 1, MaxSessionsPerShard: 8, TickHz: 15}, reg)
	if err != nil {
		panic(err)
	}
	defer hub.Stop()

	// A client streams raw EEG into a ring (in production, a UDP/LSL inlet
	// fills it); the session drains it at the tick rate.
	ring := stream.NewRing(512)
	gen := eeg.NewGenerator(eeg.NewSubject(0), 42)
	for i := 0; i < 150; i++ {
		raw := gen.Next(eeg.Left)
		ring.Push(stream.Sample{Seq: uint64(i), Values: append([]float64(nil), raw[:]...)})
	}
	id, err := hub.Admit(serve.SessionConfig{
		ModelKey: "shared",
		Source:   serve.RingSource{Ring: ring},
		Norm:     dataset.Stats{}, // zero value: no normalisation
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 15; i++ { // 15 ticks × ~8⅓ samples fill the 100-sample window
		hub.TickAll()
	}
	st, _ := hub.Session(id)
	fmt.Println("sessions:", hub.Sessions())
	fmt.Println("decoded some labels:", st.Decoded > 0)
	// Output:
	// sessions: 1
	// decoded some labels: true
}

// ExampleHub_Checkpoint kills a serving hub and resumes it from disk: the
// restored fleet keeps its sessions, models and counters, without retraining.
func ExampleHub_Checkpoint() {
	reg := serve.NewRegistry()
	reg.GetOrBuild("shared", func() (models.Classifier, int64, error) {
		return tinyForest(100), 0, nil
	})
	hub, _ := serve.NewHub(serve.Config{Shards: 1, MaxSessionsPerShard: 8, TickHz: 15}, reg)
	ring := stream.NewRing(512)
	gen := eeg.NewGenerator(eeg.NewSubject(1), 7)
	for i := 0; i < 200; i++ {
		raw := gen.Next(eeg.Right)
		ring.Push(stream.Sample{Seq: uint64(i), Values: append([]float64(nil), raw[:]...)})
	}
	hub.Admit(serve.SessionConfig{ModelKey: "shared", Source: serve.RingSource{Ring: ring}, Tag: "demo"})
	for i := 0; i < 10; i++ {
		hub.TickAll()
	}

	root, err := os.MkdirTemp("", "cogarm-example-ckpt")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)
	if _, err := hub.Checkpoint(root); err != nil {
		panic(err)
	}
	hub.Stop() // the crash

	// Restart: the factory rebinds a live source per session by its tag.
	restored, _, err := serve.RestoreHubDir(root,
		func(rec serve.RestoredSession) (serve.Source, error) {
			return serve.RingSource{Ring: stream.NewRing(512)}, nil
		})
	if err != nil {
		panic(err)
	}
	defer restored.Stop()
	fmt.Println("restored sessions:", restored.Sessions())
	// Output:
	// restored sessions: 1
}
