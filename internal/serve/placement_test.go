package serve

import (
	"errors"
	"reflect"
	"testing"
)

// TestBackpressureRefusesOverloadedShards: a fleet whose shards still have
// static capacity must refuse admissions once measured tick latency crowds
// the tick budget — and the refusal must be visible in the snapshot.
func TestBackpressureRefusesOverloadedShards(t *testing.T) {
	reg, p := testFleet(t)
	// An absurd tick rate gives a sub-microsecond budget, so any real tick's
	// latency overruns it: the backpressure signal with no sleeping.
	hub, err := NewHub(Config{Shards: 2, MaxSessionsPerShard: 8, TickHz: 1e7, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	if _, err := hub.Admit(boardSession(t, p, 0, 1)); err != nil {
		t.Fatalf("admission into an idle fleet refused: %v", err)
	}
	for i := 0; i < 8; i++ {
		hub.TickAll()
	}
	_, err = hub.Admit(boardSession(t, p, 0, 2))
	if !errors.Is(err, ErrFleetOverloaded) {
		t.Fatalf("overloaded fleet admitted a session (err=%v)", err)
	}
	snap := hub.Snapshot()
	if snap.RefusedOverload != 1 || snap.RefusedFull != 0 {
		t.Fatalf("refusals not surfaced: %+v", snap)
	}
	// Disabling the latency gate readmits: capacity is the only limit again.
	hub2, err := NewHub(Config{Shards: 2, MaxSessionsPerShard: 8, TickHz: 1e7, LatencyWindow: 16,
		Placement: LeastLoaded{MaxP99Frac: -1}}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub2.Stop()
	if _, err := hub2.Admit(boardSession(t, p, 0, 3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		hub2.TickAll()
	}
	if _, err := hub2.Admit(boardSession(t, p, 0, 4)); err != nil {
		t.Fatalf("latency-gate-disabled fleet refused: %v", err)
	}
}

// TestFleetFullRefusalCounted: static-cap refusals keep returning
// ErrFleetFull and are counted separately from backpressure refusals.
func TestFleetFullRefusalCounted(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 1, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	if _, err := hub.Admit(boardSession(t, p, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Admit(boardSession(t, p, 0, 2)); !errors.Is(err, ErrFleetFull) {
		t.Fatalf("full fleet returned %v, want ErrFleetFull", err)
	}
	if snap := hub.Snapshot(); snap.RefusedFull != 1 || snap.RefusedOverload != 0 {
		t.Fatalf("refusals not surfaced: RefusedFull=%d RefusedOverload=%d", snap.RefusedFull, snap.RefusedOverload)
	}
}

// pinnedPlacement always places on one shard — the minimal custom policy.
type pinnedPlacement struct{ shard int }

func (p pinnedPlacement) Place(shards []ShardInfo) (int, error) { return p.shard, nil }

// TestCustomPlacementPlugs verifies the hub honours an injected Placement.
func TestCustomPlacementPlugs(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 3, MaxSessionsPerShard: 8, TickHz: 15, LatencyWindow: 16,
		Placement: pinnedPlacement{shard: 2}}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	for i := 0; i < 4; i++ {
		if _, err := hub.Admit(boardSession(t, p, 0, uint64(i)+1)); err != nil {
			t.Fatal(err)
		}
	}
	snap := hub.Snapshot()
	for _, s := range snap.Shards {
		want := 0
		if s.Shard == 2 {
			want = 4
		}
		if s.Sessions != want {
			t.Fatalf("shard %d has %d sessions, want %d (placement ignored): %+v", s.Shard, s.Sessions, want, snap.Shards)
		}
	}
}

// TestExtractRestoreSessionBitwise is the single-session migration
// primitive's contract: ExtractSession on one hub + RestoreSession on
// another resumes mid-window state so exactly that the continued decode
// stream matches an uninterrupted reference tick for tick.
func TestExtractRestoreSessionBitwise(t *testing.T) {
	reg, p := testFleet(t)
	const totalSamples, totalTicks, moveTick = 700, 70, 23
	streamA := scriptedEEG(0, 41, totalSamples)
	cfg := Config{Shards: 2, MaxSessionsPerShard: 4, TickHz: 15, LatencyWindow: 32}

	ref, err := NewHub(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()
	refID, err := ref.Admit(SessionConfig{ModelKey: "rf", Source: &scriptSource{samples: streamA}, Norm: p.NormFor(0), Tag: "mover"})
	if err != nil {
		t.Fatal(err)
	}
	var want []SessionStats
	for i := 0; i < totalTicks; i++ {
		want = append(want, tickStats(t, ref, []SessionID{refID})...)
	}

	src := &scriptSource{samples: streamA}
	hubA, err := NewHub(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hubA.Stop()
	id, err := hubA.Admit(SessionConfig{ModelKey: "rf", Source: src, Norm: p.NormFor(0), Tag: "mover"})
	if err != nil {
		t.Fatal(err)
	}
	var got []SessionStats
	for i := 0; i < moveTick; i++ {
		got = append(got, tickStats(t, hubA, []SessionID{id})...)
	}

	rec, ok := hubA.ExtractSession(id)
	if !ok {
		t.Fatal("extract failed")
	}
	if hubA.Sessions() != 0 {
		t.Fatal("extracted session still on source hub")
	}
	if _, ok := hubA.ExtractSession(id); ok {
		t.Fatal("double extract succeeded")
	}

	hubB, err := NewHub(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hubB.Stop()
	newID, err := hubB.RestoreSession(rec, &scriptSource{samples: streamA[src.pos:]})
	if err != nil {
		t.Fatal(err)
	}
	for i := moveTick; i < totalTicks; i++ {
		got = append(got, tickStats(t, hubB, []SessionID{newID})...)
	}

	if len(got) != len(want) {
		t.Fatalf("recorded %d stats, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		g.ID, w.ID = 0, 0 // node-local identity differs by design
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("tick %d diverged after extract/restore:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestRestoreSessionRequiresModel: migrating into a hub that cannot resolve
// the session's model must fail cleanly, not panic a shard later.
func TestRestoreSessionRequiresModel(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	id, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: p.NormFor(0)})
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := hub.ExtractSession(id)
	if !ok {
		t.Fatal("extract failed")
	}
	empty, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 16}, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Stop()
	if _, err := empty.RestoreSession(rec, &scriptSource{}); err == nil {
		t.Fatal("restore without the model succeeded")
	}
}
