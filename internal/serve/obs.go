package serve

import (
	"fmt"
	"time"

	"cognitivearm/internal/obs"
)

// serveObs bundles the hub's process-global telemetry handles, resolved once
// at NewHub from the obs.Default registry so the tick path touches only
// direct atomic pointers — no lookups, no locks, no allocations. Several
// hubs in one process (tests, loadgen cluster mode) share the same series;
// the registry's idempotent registration makes that aggregation, not a
// collision.
//
// A nil *serveObs disables telemetry entirely (Config.DisableTelemetry):
// every instrumentation site is nil-guarded, including the stage clock
// reads, so the disabled path measures the true uninstrumented cost —
// that is the baseline benchtables' telemetry-off column records.
type serveObs struct {
	ticks      *obs.Counter
	samples    *obs.Counter
	inferences *obs.Counter
	batches    *obs.Counter
	admissions *obs.Counter
	evictions  *obs.Counter

	refusedFull     *obs.Counter
	refusedOverload *obs.Counter

	sessions *obs.Gauge

	tick        *obs.Histogram
	stageDrain  *obs.Histogram
	stageWindow *obs.Histogram
	stageInfer  *obs.Histogram
	stageDecide *obs.Histogram
	batchSize   *obs.Histogram

	events *obs.EventRing
}

// newServeObs resolves the serving metric set on the process-global
// registry.
func newServeObs() *serveObs {
	reg := obs.Default()
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("cogarm_serve_tick_stage_seconds",
			"Per-stage shard tick breakdown: drain (source reads), window (filter+normalise+push), infer (batched classification), decide (debounce+counters).",
			obs.DurationBounds(), obs.L("stage", name))
	}
	return &serveObs{
		ticks: reg.Counter("cogarm_serve_ticks_total",
			"Completed shard ticks across all shards."),
		samples: reg.Counter("cogarm_serve_samples_total",
			"Raw samples ingested across all sessions."),
		inferences: reg.Counter("cogarm_serve_inferences_total",
			"Classified windows (one per ready session per tick)."),
		batches: reg.Counter("cogarm_serve_batches_total",
			"Batched classifier calls; inferences/batches is the realised coalescing factor."),
		admissions: reg.Counter("cogarm_serve_admissions_total",
			"Sessions admitted (includes migration-in restores)."),
		evictions: reg.Counter("cogarm_serve_evictions_total",
			"Sessions evicted (idle timeout or explicit Evict)."),
		refusedFull: reg.Counter("cogarm_serve_refused_total",
			"Admissions refused, by reason: full = static capacity cap, overload = p99 backpressure.",
			obs.L("reason", "full")),
		refusedOverload: reg.Counter("cogarm_serve_refused_total",
			"Admissions refused, by reason: full = static capacity cap, overload = p99 backpressure.",
			obs.L("reason", "overload")),
		sessions: reg.Gauge("cogarm_serve_sessions",
			"Live sessions currently admitted."),
		tick: reg.Histogram("cogarm_serve_tick_seconds",
			"Whole shard tick wall latency.", obs.DurationBounds()),
		stageDrain:  stage("drain"),
		stageWindow: stage("window"),
		stageInfer:  stage("infer"),
		stageDecide: stage("decide"),
		batchSize: reg.Histogram("cogarm_serve_batch_size",
			"Windows per batched classifier call.", obs.SizeBounds()),
		events: obs.DefaultEvents(),
	}
}

// Health probes the hub for the admin plane's /healthz (and, eventually, the
// failure detector): it returns nil while every shard is serving within its
// latency budget and an error naming the first problem otherwise. A shard is
// unhealthy when its paced loop should be running but is not, when it has
// stopped ticking for several tick periods, or when its p99 tick latency
// exceeds the whole tick budget (1/TickHz) — past the point where admission
// backpressure (90% of budget) already refuses new sessions.
func (h *Hub) Health() error {
	budget := 1 / h.cfg.TickHz
	h.mu.Lock()
	running := h.running
	h.mu.Unlock()
	for _, s := range h.shards {
		if running && !s.isRunning() {
			return fmt.Errorf("shard %d: tick loop not running", s.id)
		}
		if running {
			if last := s.met.lastTickAt(); last > 0 {
				stale := time.Since(time.Unix(0, last)).Seconds()
				if lim := 10 * budget; stale > lim && stale > 2 {
					return fmt.Errorf("shard %d: no tick for %.1fs (budget %.0fms)", s.id, stale, 1e3*budget)
				}
			}
		}
		if p99 := s.met.p99(); p99 > budget {
			return fmt.Errorf("shard %d overloaded: tick p99 %.2fms exceeds tick budget %.2fms",
				s.id, 1e3*p99, 1e3*budget)
		}
	}
	return nil
}
