package serve

import (
	"fmt"
	"sort"
	"sync"

	"cognitivearm/internal/metrics"
)

// shardMetrics accumulates one shard's serving counters plus a bounded ring
// of recent tick latencies for the percentile snapshot.
type shardMetrics struct {
	mu         sync.Mutex
	ticks      uint64
	inferences uint64
	batches    uint64
	evictions  uint64
	samplesIn  uint64

	lat     []float64 // ring of recent tick latencies (seconds)
	latIdx  int
	latFull bool

	// p99Cache memoises the admission-path percentile so bursts of Admit
	// calls (e.g. an inbound migration) do not re-sort the latency ring per
	// session; it refreshes after latency window/16 new ticks.
	p99Cache  float64
	p99AtTick uint64
	p99Valid  bool
}

func newShardMetrics(window int) shardMetrics {
	return shardMetrics{lat: make([]float64, window)}
}

func (m *shardMetrics) tick(latencySec float64, samplesIn uint64) {
	m.mu.Lock()
	m.ticks++
	m.samplesIn += samplesIn
	m.lat[m.latIdx] = latencySec
	m.latIdx++
	if m.latIdx == len(m.lat) {
		m.latIdx = 0
		m.latFull = true
	}
	m.mu.Unlock()
}

// p99 returns the 99th percentile of the retained tick latencies in seconds
// (0 until the shard has ticked). It is the backpressure signal admission
// consults before placing a session. The value is cached and refreshed only
// after the window has turned over by 1/16th, so admission bursts cost a map
// read, not a sort of the whole ring each.
func (m *shardMetrics) p99() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	refreshEvery := uint64(len(m.lat) / 16)
	if refreshEvery == 0 {
		refreshEvery = 1
	}
	if m.p99Valid && m.ticks-m.p99AtTick < refreshEvery {
		return m.p99Cache
	}
	n := m.latIdx
	if m.latFull {
		n = len(m.lat)
	}
	lat := append([]float64(nil), m.lat[:n]...)
	sort.Float64s(lat)
	m.p99Cache = metrics.PercentileSorted(lat, 0.99)
	m.p99AtTick = m.ticks
	m.p99Valid = true
	return m.p99Cache
}

func (m *shardMetrics) batch(size int) {
	m.mu.Lock()
	m.batches++
	m.inferences += uint64(size)
	m.mu.Unlock()
}

func (m *shardMetrics) evict() {
	m.mu.Lock()
	m.evictions++
	m.mu.Unlock()
}

// snapshot returns the counters plus a sorted copy of the retained
// latencies so the fleet aggregation can pool them.
func (m *shardMetrics) snapshot() (ShardSnapshot, []float64) {
	m.mu.Lock()
	n := m.latIdx
	if m.latFull {
		n = len(m.lat)
	}
	lat := append([]float64(nil), m.lat[:n]...)
	snap := ShardSnapshot{
		Ticks:      m.ticks,
		Inferences: m.inferences,
		Batches:    m.batches,
		Evictions:  m.evictions,
		SamplesIn:  m.samplesIn,
	}
	m.mu.Unlock()
	if snap.Batches > 0 {
		snap.MeanBatch = float64(snap.Inferences) / float64(snap.Batches)
	}
	sort.Float64s(lat)
	snap.TickP50Ms = 1e3 * metrics.PercentileSorted(lat, 0.50)
	snap.TickP99Ms = 1e3 * metrics.PercentileSorted(lat, 0.99)
	return snap, lat
}

// ShardSnapshot is one shard's point-in-time serving report.
type ShardSnapshot struct {
	Shard    int
	Sessions int
	// Ticks counts completed tick loops; SamplesIn counts raw samples
	// ingested across all sessions.
	Ticks     uint64
	SamplesIn uint64
	// Inferences counts classified windows; Batches counts batched
	// classifier calls, so MeanBatch = Inferences/Batches is the realised
	// cross-session coalescing factor.
	Inferences uint64
	Batches    uint64
	MeanBatch  float64
	Evictions  uint64
	// TickP50Ms / TickP99Ms are percentiles of recent tick wall latencies.
	TickP50Ms float64
	TickP99Ms float64
}

// String renders one shard's report as a log line.
func (s ShardSnapshot) String() string {
	return fmt.Sprintf("shard %d: %d sessions, %d ticks, %d inf in %d batches (mean %.1f), p50 %.3fms p99 %.3fms, %d evicted",
		s.Shard, s.Sessions, s.Ticks, s.Inferences, s.Batches, s.MeanBatch, s.TickP50Ms, s.TickP99Ms, s.Evictions)
}

// FleetSnapshot aggregates every shard: totals plus fleet-wide percentiles
// over the pooled recent tick latencies.
type FleetSnapshot struct {
	Sessions   int
	Ticks      uint64
	SamplesIn  uint64
	Inferences uint64
	Batches    uint64
	Evictions  uint64
	// RefusedFull counts admissions refused at the static per-shard cap;
	// RefusedOverload counts admissions refused by backpressure — shards had
	// capacity, but their p99 tick latency already crowded the tick budget.
	RefusedFull     uint64
	RefusedOverload uint64
	TickP50Ms       float64
	TickP99Ms       float64
	Shards          []ShardSnapshot
}

// String renders the fleet-wide headline as a log line.
func (f FleetSnapshot) String() string {
	mean := 0.0
	if f.Batches > 0 {
		mean = float64(f.Inferences) / float64(f.Batches)
	}
	s := fmt.Sprintf("fleet: %d sessions on %d shards, %d ticks, %d inferences (mean batch %.1f), tick p50 %.3fms p99 %.3fms",
		f.Sessions, len(f.Shards), f.Ticks, f.Inferences, mean, f.TickP50Ms, f.TickP99Ms)
	if f.RefusedFull+f.RefusedOverload > 0 {
		s += fmt.Sprintf(", refused %d full / %d overloaded", f.RefusedFull, f.RefusedOverload)
	}
	return s
}
