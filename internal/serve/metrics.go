package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cognitivearm/internal/metrics"
)

// shardMetrics accumulates one shard's serving counters plus a bounded ring
// of recent tick latencies for the percentile snapshot.
type shardMetrics struct {
	mu         sync.Mutex
	ticks      uint64
	inferences uint64
	batches    uint64
	evictions  uint64
	samplesIn  uint64
	// lastTickNano is the wall time (UnixNano) of the most recent completed
	// tick; the health probe uses it to detect a shard that stopped ticking.
	lastTickNano int64

	lat     []float64 // ring of recent tick latencies (seconds)
	latIdx  int
	latFull bool
	// scratch is the reusable sort buffer for the percentile paths: p99()
	// and snapshot() copy the latency ring into it and sort in place, so
	// neither allocates once the buffer reaches the ring's size. Guarded by
	// mu; snapshot hands it out and the slice stays valid only until the
	// next p99/snapshot call (Hub.Snapshot copies it out immediately).
	scratch []float64

	// p99Cache memoises the admission-path percentile so bursts of Admit
	// calls (e.g. an inbound migration) do not re-sort the latency ring per
	// session; it refreshes after latency window/16 new ticks.
	p99Cache  float64
	p99AtTick uint64
	p99Valid  bool
}

func newShardMetrics(window int) shardMetrics {
	return shardMetrics{lat: make([]float64, window)}
}

func (m *shardMetrics) tick(latencySec float64, samplesIn uint64) {
	m.mu.Lock()
	m.ticks++
	m.samplesIn += samplesIn
	m.lastTickNano = time.Now().UnixNano()
	m.lat[m.latIdx] = latencySec
	m.latIdx++
	if m.latIdx == len(m.lat) {
		m.latIdx = 0
		m.latFull = true
	}
	m.mu.Unlock()
}

// p99 returns the 99th percentile of the retained tick latencies in seconds
// (0 until the shard has ticked). It is the backpressure signal admission
// consults before placing a session. The value is cached and refreshed only
// after the window has turned over by 1/16th, so admission bursts cost a map
// read, not a sort of the whole ring each.
func (m *shardMetrics) p99() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	refreshEvery := uint64(len(m.lat) / 16)
	if refreshEvery == 0 {
		refreshEvery = 1
	}
	if m.p99Valid && m.ticks-m.p99AtTick < refreshEvery {
		return m.p99Cache
	}
	lat := m.sortedLatenciesLocked()
	m.p99Cache = metrics.PercentileSorted(lat, 0.99)
	m.p99AtTick = m.ticks
	m.p99Valid = true
	return m.p99Cache
}

// sortedLatenciesLocked copies the retained latencies into the reusable
// scratch buffer and sorts it. Callers hold m.mu; the result is valid until
// the next call.
func (m *shardMetrics) sortedLatenciesLocked() []float64 {
	n := m.latIdx
	if m.latFull {
		n = len(m.lat)
	}
	if cap(m.scratch) < n {
		m.scratch = make([]float64, n, len(m.lat))
	}
	m.scratch = m.scratch[:n]
	copy(m.scratch, m.lat[:n])
	sort.Float64s(m.scratch)
	return m.scratch
}

// lastTickAt reports the UnixNano wall time of the most recent completed
// tick, 0 if the shard has never ticked.
func (m *shardMetrics) lastTickAt() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastTickNano
}

func (m *shardMetrics) batch(size int) {
	m.mu.Lock()
	m.batches++
	m.inferences += uint64(size)
	m.mu.Unlock()
}

func (m *shardMetrics) evict() {
	m.mu.Lock()
	m.evictions++
	m.mu.Unlock()
}

// snapshot returns the counters and appends the sorted retained latencies to
// pool, so the fleet aggregation reuses one pooled buffer instead of every
// shard allocating a copy. The sort runs in the metrics object's reusable
// scratch, entirely under the lock — nothing aliasing internal state
// escapes.
func (m *shardMetrics) snapshot(pool []float64) (ShardSnapshot, []float64) {
	m.mu.Lock()
	snap := ShardSnapshot{
		Ticks:      m.ticks,
		Inferences: m.inferences,
		Batches:    m.batches,
		Evictions:  m.evictions,
		SamplesIn:  m.samplesIn,
	}
	lat := m.sortedLatenciesLocked()
	snap.TickP50Ms = 1e3 * metrics.PercentileSorted(lat, 0.50)
	snap.TickP99Ms = 1e3 * metrics.PercentileSorted(lat, 0.99)
	pool = append(pool, lat...)
	m.mu.Unlock()
	if snap.Batches > 0 {
		snap.MeanBatch = float64(snap.Inferences) / float64(snap.Batches)
	}
	return snap, pool
}

// ShardSnapshot is one shard's point-in-time serving report.
type ShardSnapshot struct {
	Shard    int
	Sessions int
	// Ticks counts completed tick loops; SamplesIn counts raw samples
	// ingested across all sessions.
	Ticks     uint64
	SamplesIn uint64
	// Inferences counts classified windows; Batches counts batched
	// classifier calls, so MeanBatch = Inferences/Batches is the realised
	// cross-session coalescing factor.
	Inferences uint64
	Batches    uint64
	MeanBatch  float64
	Evictions  uint64
	// TickP50Ms / TickP99Ms are percentiles of recent tick wall latencies.
	TickP50Ms float64
	TickP99Ms float64
}

// String renders one shard's report as a log line.
func (s ShardSnapshot) String() string {
	return fmt.Sprintf("shard %d: %d sessions, %d ticks, %d inf in %d batches (mean %.1f), p50 %.3fms p99 %.3fms, %d evicted",
		s.Shard, s.Sessions, s.Ticks, s.Inferences, s.Batches, s.MeanBatch, s.TickP50Ms, s.TickP99Ms, s.Evictions)
}

// FleetSnapshot aggregates every shard: totals plus fleet-wide percentiles
// over the pooled recent tick latencies.
type FleetSnapshot struct {
	Sessions   int
	Ticks      uint64
	SamplesIn  uint64
	Inferences uint64
	Batches    uint64
	Evictions  uint64
	// RefusedFull counts admissions refused at the static per-shard cap;
	// RefusedOverload counts admissions refused by backpressure — shards had
	// capacity, but their p99 tick latency already crowded the tick budget.
	RefusedFull     uint64
	RefusedOverload uint64
	TickP50Ms       float64
	TickP99Ms       float64
	Shards          []ShardSnapshot
}

// String renders the fleet-wide headline as a log line.
func (f FleetSnapshot) String() string {
	mean := 0.0
	if f.Batches > 0 {
		mean = float64(f.Inferences) / float64(f.Batches)
	}
	s := fmt.Sprintf("fleet: %d sessions on %d shards, %d ticks, %d inferences (mean batch %.1f), tick p50 %.3fms p99 %.3fms",
		f.Sessions, len(f.Shards), f.Ticks, f.Inferences, mean, f.TickP50Ms, f.TickP99Ms)
	if f.RefusedFull+f.RefusedOverload > 0 {
		s += fmt.Sprintf(", refused %d full / %d overloaded", f.RefusedFull, f.RefusedOverload)
	}
	return s
}
