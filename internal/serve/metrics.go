package serve

import (
	"fmt"
	"sort"
	"sync"

	"cognitivearm/internal/metrics"
)

// shardMetrics accumulates one shard's serving counters plus a bounded ring
// of recent tick latencies for the percentile snapshot.
type shardMetrics struct {
	mu         sync.Mutex
	ticks      uint64
	inferences uint64
	batches    uint64
	evictions  uint64
	samplesIn  uint64

	lat     []float64 // ring of recent tick latencies (seconds)
	latIdx  int
	latFull bool
}

func newShardMetrics(window int) shardMetrics {
	return shardMetrics{lat: make([]float64, window)}
}

func (m *shardMetrics) tick(latencySec float64, samplesIn uint64) {
	m.mu.Lock()
	m.ticks++
	m.samplesIn += samplesIn
	m.lat[m.latIdx] = latencySec
	m.latIdx++
	if m.latIdx == len(m.lat) {
		m.latIdx = 0
		m.latFull = true
	}
	m.mu.Unlock()
}

func (m *shardMetrics) batch(size int) {
	m.mu.Lock()
	m.batches++
	m.inferences += uint64(size)
	m.mu.Unlock()
}

func (m *shardMetrics) evict() {
	m.mu.Lock()
	m.evictions++
	m.mu.Unlock()
}

// snapshot returns the counters plus a sorted copy of the retained
// latencies so the fleet aggregation can pool them.
func (m *shardMetrics) snapshot() (ShardSnapshot, []float64) {
	m.mu.Lock()
	n := m.latIdx
	if m.latFull {
		n = len(m.lat)
	}
	lat := append([]float64(nil), m.lat[:n]...)
	snap := ShardSnapshot{
		Ticks:      m.ticks,
		Inferences: m.inferences,
		Batches:    m.batches,
		Evictions:  m.evictions,
		SamplesIn:  m.samplesIn,
	}
	m.mu.Unlock()
	if snap.Batches > 0 {
		snap.MeanBatch = float64(snap.Inferences) / float64(snap.Batches)
	}
	sort.Float64s(lat)
	snap.TickP50Ms = 1e3 * metrics.PercentileSorted(lat, 0.50)
	snap.TickP99Ms = 1e3 * metrics.PercentileSorted(lat, 0.99)
	return snap, lat
}

// ShardSnapshot is one shard's point-in-time serving report.
type ShardSnapshot struct {
	Shard    int
	Sessions int
	// Ticks counts completed tick loops; SamplesIn counts raw samples
	// ingested across all sessions.
	Ticks     uint64
	SamplesIn uint64
	// Inferences counts classified windows; Batches counts batched
	// classifier calls, so MeanBatch = Inferences/Batches is the realised
	// cross-session coalescing factor.
	Inferences uint64
	Batches    uint64
	MeanBatch  float64
	Evictions  uint64
	// TickP50Ms / TickP99Ms are percentiles of recent tick wall latencies.
	TickP50Ms float64
	TickP99Ms float64
}

// String renders one shard's report as a log line.
func (s ShardSnapshot) String() string {
	return fmt.Sprintf("shard %d: %d sessions, %d ticks, %d inf in %d batches (mean %.1f), p50 %.3fms p99 %.3fms, %d evicted",
		s.Shard, s.Sessions, s.Ticks, s.Inferences, s.Batches, s.MeanBatch, s.TickP50Ms, s.TickP99Ms, s.Evictions)
}

// FleetSnapshot aggregates every shard: totals plus fleet-wide percentiles
// over the pooled recent tick latencies.
type FleetSnapshot struct {
	Sessions   int
	Ticks      uint64
	SamplesIn  uint64
	Inferences uint64
	Batches    uint64
	Evictions  uint64
	TickP50Ms  float64
	TickP99Ms  float64
	Shards     []ShardSnapshot
}

// String renders the fleet-wide headline as a log line.
func (f FleetSnapshot) String() string {
	mean := 0.0
	if f.Batches > 0 {
		mean = float64(f.Inferences) / float64(f.Batches)
	}
	return fmt.Sprintf("fleet: %d sessions on %d shards, %d ticks, %d inferences (mean batch %.1f), tick p50 %.3fms p99 %.3fms",
		f.Sessions, len(f.Shards), f.Ticks, f.Inferences, mean, f.TickP50Ms, f.TickP99Ms)
}
