package serve

import (
	"errors"
)

// Session placement is pluggable: the Hub asks a Placement policy which shard
// receives each newly admitted (or migrated-in) session, handing it a
// point-in-time load view of every shard. The default policy, LeastLoaded,
// reproduces the hub's original behaviour — fill the emptiest shard first —
// plus backpressure-aware admission: shards whose recent p99 tick latency
// already crowds the tick budget refuse new sessions before they overrun,
// instead of only when the static per-shard cap is hit.
//
// Placement decides where a session runs inside ONE hub; routing a session to
// the right hub across a multi-node fleet is the consistent-hash layer in
// internal/cluster, built on top of this interface.

// ShardInfo is the load view of one shard handed to a Placement policy.
type ShardInfo struct {
	// Index identifies the shard within the hub.
	Index int
	// Sessions is the shard's current session count; Capacity is the static
	// admission cap (Config.MaxSessionsPerShard).
	Sessions int
	Capacity int
	// TickP99 is the shard's recent 99th-percentile tick latency in seconds
	// (0 until the shard has ticked); TickBudget is the tick period
	// (1/TickHz) the shard must stay inside to hold its classification rate.
	TickP99    float64
	TickBudget float64
}

// Placement chooses the shard that receives the next session.
//
// Place returns the Index of the chosen shard, or an error when no shard
// should accept the session: ErrFleetFull when every shard is at its static
// cap, ErrFleetOverloaded when capacity exists but latency budgets do not.
// Implementations must be safe for concurrent use; the hub may call Place
// from concurrent Admits.
type Placement interface {
	Place(shards []ShardInfo) (int, error)
}

// ErrFleetOverloaded is returned by Admit when shards have session capacity
// left but their tick latency already crowds the tick budget — admitting more
// load would make every session on the shard miss its classification rate.
var ErrFleetOverloaded = errors.New("serve: fleet overloaded (tick latency budget exhausted)")

// DefaultMaxP99Frac is the fraction of the tick budget a shard's p99 tick
// latency may reach before LeastLoaded stops placing new sessions on it.
// At the paper's 15 Hz the budget is ~66.7 ms, so a shard refuses beyond a
// ~60 ms p99 — before it overruns, not after.
const DefaultMaxP99Frac = 0.9

// LeastLoaded is the default placement policy: the session goes to the shard
// with the fewest sessions among those that are under their static cap AND
// under their latency budget. The zero value is ready to use.
type LeastLoaded struct {
	// MaxP99Frac is the backpressure threshold as a fraction of the tick
	// budget. 0 means DefaultMaxP99Frac; a negative value disables
	// latency-based refusal entirely (static cap only).
	MaxP99Frac float64
}

// Place implements Placement.
func (ll LeastLoaded) Place(shards []ShardInfo) (int, error) {
	frac := ll.MaxP99Frac
	if frac == 0 {
		frac = DefaultMaxP99Frac
	}
	best := -1
	bestSessions := 0
	overloaded := false
	for _, si := range shards {
		if si.Sessions >= si.Capacity {
			continue
		}
		if frac > 0 && si.TickBudget > 0 && si.TickP99 > frac*si.TickBudget {
			overloaded = true
			continue
		}
		if best < 0 || si.Sessions < bestSessions {
			best = si.Index
			bestSessions = si.Sessions
		}
	}
	if best < 0 {
		if overloaded {
			return 0, ErrFleetOverloaded
		}
		return 0, ErrFleetFull
	}
	return best, nil
}
