package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cognitivearm/internal/stream"
	"cognitivearm/internal/wal"
)

// journalFleet builds the standard two-session victim/reference pair used by
// the WAL recovery tests: one script-fed session, one ring-fed session with
// the whole stream buffered upfront (so a kill always leaves pending
// samples in flight).
func journalFleet(t *testing.T, hub *Hub, streamA, streamB []stream.Sample) (ids []SessionID, script *scriptSource) {
	t.Helper()
	_, p := testFleet(t)
	script = &scriptSource{samples: streamA}
	ring := stream.NewRing(len(streamB) + 1)
	for _, smp := range streamB {
		ring.Push(smp)
	}
	for _, src := range []Source{script, RingSource{Ring: ring}} {
		id, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: src, Norm: p.NormFor(0), Tag: "s"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids, script
}

// journalSource rebinds sources for a hub restored from WAL replay: the
// script session resumes at the position the killed process had consumed up
// to its last flush; the ring session's remainder rides in as pending
// records, so its new ring is empty.
func journalSource(t *testing.T, streamA []stream.Sample, consumed int) SourceFactory {
	byID := map[int]bool{}
	return func(rec RestoredSession) (Source, error) {
		t.Helper()
		if byID[int(rec.ID)] {
			t.Fatalf("session %d restored twice", rec.ID)
		}
		byID[int(rec.ID)] = true
		if int(rec.ID) == 1 {
			return &scriptSource{samples: streamA[consumed:]}, nil
		}
		return RingSource{Ring: stream.NewRing(8)}, nil
	}
}

// TestJournalWalOnlyRecoveryBitwise is the acceptance test for the WAL as a
// standalone durability layer: a hub that never wrote a checkpoint, killed
// after its last journal flush (losing the post-flush ticks), must restore
// from WAL replay alone and then emit exactly the per-tick decode sequence
// the uninterrupted reference hub emits from the flush boundary on.
func TestJournalWalOnlyRecoveryBitwise(t *testing.T) {
	reg, _ := testFleet(t)
	cfg := Config{Shards: 2, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 32}
	const (
		totalSamples = 700
		totalTicks   = 60
		flushTick    = 20 // journal flush boundary: everything after is lost
		killTick     = 27
	)
	streamA := scriptedEEG(0, 41, totalSamples)
	streamB := scriptedEEG(0, 97, totalSamples)

	ref, err := NewHub(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()
	refIDs, _ := journalFleet(t, ref, streamA, streamB)
	var want []SessionStats
	for i := 0; i < totalTicks; i++ {
		want = append(want, tickStats(t, ref, refIDs)...)
	}

	victim, err := NewHub(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	ids, script := journalFleet(t, victim, streamA, streamB)
	walDir := t.TempDir()
	j, info, err := NewJournal(victim, wal.Options{Dir: walDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Segments != 0 {
		t.Fatalf("fresh WAL recovered %d segments", info.Segments)
	}
	for i := 0; i < flushTick; i++ {
		victim.TickAll()
	}
	if _, last, err := j.Flush(); err != nil || last == 0 {
		t.Fatalf("flush: last=%d err=%v", last, err)
	}
	consumed := script.pos
	// Post-flush ticks advance the victim beyond what the WAL holds; the
	// kill throws them away, and recovery must land exactly on the flush.
	for i := flushTick; i < killTick; i++ {
		victim.TickAll()
	}
	victim.Stop() // the "kill": journal never closed, WAL never rotated

	state, applied, err := ReplayWAL(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if state == nil || applied == 0 {
		t.Fatalf("replay applied %d entries, state=%v", applied, state)
	}
	restored, err := RestoreHub(state, journalSource(t, streamA, consumed))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	if restored.Sessions() != 2 {
		t.Fatalf("restored %d sessions, want 2", restored.Sessions())
	}
	var got []SessionStats
	for i := flushTick; i < totalTicks; i++ {
		got = append(got, tickStats(t, restored, ids)...)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[flushTick*len(ids)+i]) {
			t.Fatalf("tick %d session %d diverged after WAL-only restore:\n got %+v\nwant %+v",
				flushTick+i/len(ids), i%len(ids), got[i], want[flushTick*len(ids)+i])
		}
	}
}

// TestJournalCheckpointFencesAndTruncates drives the full durability
// pipeline: flush → checkpoint (snapshot + WAL truncation) → more flushes →
// kill. Recovery composes the checkpoint base with the surviving WAL tail
// and must resume bitwise-identically from the last flush. The checkpoint
// must also have compacted the WAL (truncated the covered segments) and
// fenced its manifest so replay skips what the checkpoint already holds.
func TestJournalCheckpointFencesAndTruncates(t *testing.T) {
	reg, _ := testFleet(t)
	cfg := Config{Shards: 2, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 32}
	const (
		totalSamples = 700
		totalTicks   = 60
		ckptTick     = 15
		flushTick    = 30
		killTick     = 36
	)
	streamA := scriptedEEG(0, 41, totalSamples)
	streamB := scriptedEEG(0, 97, totalSamples)

	ref, err := NewHub(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()
	refIDs, _ := journalFleet(t, ref, streamA, streamB)
	var want []SessionStats
	for i := 0; i < totalTicks; i++ {
		want = append(want, tickStats(t, ref, refIDs)...)
	}

	victim, err := NewHub(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	ids, script := journalFleet(t, victim, streamA, streamB)
	walDir, ckptRoot := t.TempDir(), t.TempDir()
	// Tiny segments force organic rotation between flushes, so truncation
	// after the checkpoint has finalized segments to actually remove.
	j, _, err := NewJournal(victim, wal.Options{Dir: walDir, SegmentBytes: 4 << 10, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ckptTick; i++ {
		victim.TickAll()
	}
	if _, _, err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Checkpoint(ckptRoot); err != nil {
		t.Fatal(err)
	}
	fence := j.Log().LastSealed()
	if fence == 0 {
		t.Fatal("checkpoint left a zero WAL fence")
	}
	for i := ckptTick; i < flushTick; i++ {
		victim.TickAll()
	}
	if _, _, err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	consumed := script.pos
	for i := flushTick; i < killTick; i++ {
		victim.TickAll()
	}
	victim.Stop() // kill

	restored, dir, applied, err := RestoreHubWal(ckptRoot, walDir, journalSource(t, streamA, consumed))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	if dir == "" {
		t.Fatal("restore ignored the checkpoint base")
	}
	if applied == 0 {
		t.Fatal("restore applied no WAL entries over the checkpoint")
	}
	var got []SessionStats
	for i := flushTick; i < totalTicks; i++ {
		got = append(got, tickStats(t, restored, ids)...)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[flushTick*len(ids)+i]) {
			t.Fatalf("tick %d session %d diverged after checkpoint+WAL restore:\n got %+v\nwant %+v",
				flushTick+i/len(ids), i%len(ids), got[i], want[flushTick*len(ids)+i])
		}
	}
	// The checkpoint compacted the WAL: every entry at or below the fence
	// lives only in the checkpoint now, so replay must start past it.
	minSeq := ^uint64(0)
	if err := wal.Dump(walDir, func(e wal.Entry) error {
		if e.Seq < minSeq {
			minSeq = e.Seq
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if minSeq <= fence {
		t.Fatalf("WAL still holds entry %d at or below the checkpoint fence %d", minSeq, fence)
	}
}

// TestJournalTornTailRecoversToLastFlush truncates the WAL at raw byte
// offsets — the serve-level stand-in for kill -9 mid-write — and requires
// recovery to land exactly on the last sealed flush, never on a partial one.
func TestJournalTornTailRecoversToLastFlush(t *testing.T) {
	reg, _ := testFleet(t)
	cfg := Config{Shards: 1, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 16}
	streamA := scriptedEEG(0, 41, 400)
	streamB := scriptedEEG(0, 97, 400)

	hub, err := NewHub(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	_, script := journalFleet(t, hub, streamA, streamB)
	walDir := t.TempDir()
	j, _, err := NewJournal(hub, wal.Options{Dir: walDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		hub.TickAll()
	}
	if _, _, err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	consumed := script.pos
	sealedState, _, err := ReplayWAL(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		hub.TickAll()
	}
	if _, _, err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	hub.Stop()

	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v, err %v", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Find where the first flush's seal ends by replaying frame lengths.
	var sealedEnd int64
	func() {
		off := int64(8)
		for off < int64(len(full)) {
			plen := int64(uint32(full[off+1]) | uint32(full[off+2])<<8 | uint32(full[off+3])<<16 | uint32(full[off+4])<<24)
			end := off + 9 + plen
			if full[off] == 2 { // recSeal
				sealedEnd = end
				return
			}
			off = end
		}
	}()
	if sealedEnd == 0 {
		t.Fatal("no seal found in segment")
	}
	// Cut mid-way through the second flush's records: everything after the
	// first seal must be dropped, and the replayed state must equal the
	// state captured right after the first flush.
	cut := sealedEnd + (int64(len(full))-sealedEnd)/2
	if err := os.Truncate(segs[0], cut); err != nil {
		t.Fatal(err)
	}
	l, info, err := wal.Open(wal.Options{Dir: walDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.TornSegment == "" || info.TruncatedBytes == 0 {
		t.Fatalf("recovery reported no truncation: %+v", info)
	}
	l.Close()
	state, _, err := ReplayWAL(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(state.Sessions, sealedState.Sessions) {
		t.Fatalf("torn-tail replay state diverged from the sealed flush:\n got %+v\nwant %+v",
			state.Sessions, sealedState.Sessions)
	}
	restored, err := RestoreHub(state, journalSource(t, streamA, consumed))
	if err != nil {
		t.Fatal(err)
	}
	restored.Stop()
}

// TestJournalAuditAndDecisionTrail: flushes journal the event ring (exactly
// once per event) and a decision summary per dirty session, all queryable
// from a cold Dump.
func TestJournalAuditAndDecisionTrail(t *testing.T) {
	reg, _ := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	ids, _ := journalFleet(t, hub, scriptedEEG(0, 41, 200), scriptedEEG(0, 97, 200))
	walDir := t.TempDir()
	j, _, err := NewJournal(hub, wal.Options{Dir: walDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		hub.TickAll()
	}
	if _, _, err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		hub.TickAll()
	}
	if _, _, err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	decisions := map[uint64]int{}
	auditSeqs := map[uint64]int{}
	if err := wal.Dump(walDir, func(e wal.Entry) error {
		switch e.Kind {
		case wal.KindDecision:
			d, err := wal.DecodeDecision(e.Data)
			if err != nil {
				return err
			}
			decisions[d.Session]++
		case wal.KindAudit:
			ev, err := wal.DecodeEvent(e.Data)
			if err != nil {
				return err
			}
			auditSeqs[ev.Seq]++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if decisions[uint64(id)] == 0 {
			t.Fatalf("no decision entries journaled for session %d", id)
		}
	}
	for seq, n := range auditSeqs {
		if n != 1 {
			t.Fatalf("audit event %d journaled %d times, want exactly once", seq, n)
		}
	}
	if _, err := wal.Verify(walDir); err != nil {
		t.Fatalf("closed journal fails verification: %v", err)
	}
}

// TestJournalEmptyFlushAppendsNothing: a quiet interval (no dirty sessions,
// no departures) must not grow the WAL. Sessions are script-fed with nothing
// buffered — a session with pending samples counts as dirty by design.
func TestJournalEmptyFlushAppendsNothing(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	for _, seed := range []uint64{41, 97} {
		src := &scriptSource{samples: scriptedEEG(0, seed, 50)}
		if _, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: src, Norm: p.NormFor(0), Tag: "s"}); err != nil {
			t.Fatal(err)
		}
	}
	j, _, err := NewJournal(hub, wal.Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	hub.TickAll()
	if _, _, err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	before := j.Log().LastSealed()
	// No ticks, and the first flush drained the ring: nothing to journal.
	if _, last, err := j.Flush(); err != nil || last != before {
		t.Fatalf("idle flush moved the sealed frontier %d -> %d (err %v)", before, last, err)
	}
}
