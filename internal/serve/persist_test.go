package serve

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"cognitivearm/internal/checkpoint"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/stream"
)

// scriptSource replays a fixed pre-generated sample stream — the
// deterministic stand-in for a live subject that lets two hubs (or one hub
// killed and restored) consume byte-identical input.
type scriptSource struct {
	samples []stream.Sample
	pos     int
}

func (s *scriptSource) Read(max int) []stream.Sample {
	n := len(s.samples) - s.pos
	if max > 0 && max < n {
		n = max
	}
	out := s.samples[s.pos : s.pos+n : s.pos+n]
	s.pos += n
	return out
}

// scriptedEEG pre-generates a deterministic multichannel stream whose intent
// wanders, so decoded labels change over time.
func scriptedEEG(subject int, seed uint64, n int) []stream.Sample {
	gen := eeg.NewGenerator(eeg.NewSubject(subject), seed)
	out := make([]stream.Sample, n)
	for i := range out {
		raw := gen.Next(eeg.Action((i / 90) % 3))
		out[i] = stream.Sample{Seq: uint64(i), Values: append([]float64(nil), raw[:]...)}
	}
	return out
}

// tickStats advances the hub one tick and returns each session's stats.
func tickStats(t *testing.T, hub *Hub, ids []SessionID) []SessionStats {
	t.Helper()
	hub.TickAll()
	out := make([]SessionStats, len(ids))
	for i, id := range ids {
		st, ok := hub.Session(id)
		if !ok {
			t.Fatalf("session %d vanished", id)
		}
		out[i] = st
	}
	return out
}

// TestKillAndRestoreBitwiseIdentical is the acceptance test for fleet
// checkpointing: a hub killed mid-serve (mid-window, mid-debounce, with
// samples still buffered in a source ring) and restored from disk must emit
// exactly the per-tick decode sequence the uninterrupted hub emits for the
// same subsequent input stream — no retraining, no re-warmup, no divergence.
func TestKillAndRestoreBitwiseIdentical(t *testing.T) {
	reg, p := testFleet(t)
	const (
		totalSamples = 700
		totalTicks   = 70
		killTick     = 23 // mid-window, fractional sample accumulator in play
	)
	// Session 0 replays a script; session 1 is ring-fed with the entire
	// stream buffered upfront, so the kill point leaves most of it pending.
	streamA := scriptedEEG(0, 41, totalSamples)
	streamB := scriptedEEG(0, 97, totalSamples)

	admit := func(hub *Hub, src Source, tag string) SessionID {
		t.Helper()
		id, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: src, Norm: p.NormFor(0), Tag: tag})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	newRing := func(samples []stream.Sample) *stream.Ring {
		ring := stream.NewRing(totalSamples + 1)
		for _, smp := range samples {
			ring.Push(smp)
		}
		return ring
	}
	cfg := Config{Shards: 2, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 32}

	// Reference: one uninterrupted hub over the full stream.
	ref, err := NewHub(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()
	refIDs := []SessionID{
		admit(ref, &scriptSource{samples: streamA}, "script"),
		admit(ref, RingSource{Ring: newRing(streamB)}, "ring"),
	}
	var want []SessionStats
	for i := 0; i < totalTicks; i++ {
		want = append(want, tickStats(t, ref, refIDs)...)
	}

	// Victim: identical hub, killed at killTick.
	victim, err := NewHub(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	script := &scriptSource{samples: streamA}
	ids := []SessionID{
		admit(victim, script, "script"),
		admit(victim, RingSource{Ring: newRing(streamB)}, "ring"),
	}
	var got []SessionStats
	for i := 0; i < killTick; i++ {
		got = append(got, tickStats(t, victim, ids)...)
	}
	dir := t.TempDir()
	if _, err := victim.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	consumed := script.pos // what the dead process had already read
	victim.Stop()          // the "kill"

	// Restore into a fresh hub. The script session resumes from the exact
	// sample the dead hub stopped at; the ring session's buffered remainder
	// rides in as pending samples, so its new source is empty.
	restored, rdir, err := RestoreHubDir(dir, func(rec RestoredSession) (Source, error) {
		switch rec.Tag {
		case "script":
			return &scriptSource{samples: streamA[consumed:]}, nil
		case "ring":
			return RingSource{Ring: stream.NewRing(8)}, nil
		default:
			t.Fatalf("unexpected tag %q", rec.Tag)
			return nil, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	if filepath.Base(rdir) != "ckpt-00000001" {
		t.Fatalf("restored from %s", rdir)
	}
	if restored.Sessions() != 2 {
		t.Fatalf("restored %d sessions, want 2", restored.Sessions())
	}
	for i := killTick; i < totalTicks; i++ {
		got = append(got, tickStats(t, restored, ids)...)
	}

	if len(got) != len(want) {
		t.Fatalf("recorded %d stats, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("tick %d session %d diverged after restore:\n got %+v\nwant %+v",
				i/len(ids), i%len(ids), got[i], want[i])
		}
	}
}

// TestRestorePreservesFleetShape pins the bookkeeping half of restore: shard
// assignment, session IDs, metric counter baselines, tags and the admission
// index all survive, and new admissions do not collide with restored IDs.
func TestRestorePreservesFleetShape(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 2, MaxSessionsPerShard: 4, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []SessionID
	for i := 0; i < 4; i++ {
		id, err := hub.Admit(boardSession(t, p, 0, uint64(i)+1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 20; i++ {
		hub.TickAll()
	}
	before := hub.Snapshot()
	state := hub.CaptureState()
	hub.Stop()

	restored, err := RestoreHub(state, func(rec RestoredSession) (Source, error) {
		return &scriptSource{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	after := restored.Snapshot()
	if after.Sessions != before.Sessions || after.Ticks != before.Ticks ||
		after.Inferences != before.Inferences || after.SamplesIn != before.SamplesIn {
		t.Fatalf("counters not restored:\n got %+v\nwant %+v", after, before)
	}
	for i, s := range after.Shards {
		if s.Sessions != before.Shards[i].Sessions {
			t.Fatalf("shard %d has %d sessions, want %d (assignment not preserved)",
				i, s.Sessions, before.Shards[i].Sessions)
		}
	}
	for _, id := range ids {
		st, ok := restored.Session(id)
		if !ok {
			t.Fatalf("session %d missing after restore", id)
		}
		if st.Decoded == 0 {
			t.Fatalf("session %d lost its decode counters", id)
		}
	}
	// Fresh admissions continue past the restored ID space.
	nid, err := restored.Admit(SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: p.NormFor(0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if nid == id {
			t.Fatalf("new session reused restored ID %d", id)
		}
	}
}

// TestRestoreSourceFactoryDrops verifies a factory returning (nil, nil)
// drops just that session, the documented path for external clients that
// will reconnect on their own.
func TestRestoreSourceFactoryDrops(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 4, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: p.NormFor(0), Tag: "keep"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: p.NormFor(0), Tag: "drop"}); err != nil {
		t.Fatal(err)
	}
	state := hub.CaptureState()
	hub.Stop()
	restored, err := RestoreHub(state, func(rec RestoredSession) (Source, error) {
		if rec.Tag == "drop" {
			return nil, nil
		}
		return &scriptSource{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	if n := restored.Sessions(); n != 1 {
		t.Fatalf("restored %d sessions, want 1", n)
	}
	if _, ok := restored.Session(keep); !ok {
		t.Fatal("kept session missing")
	}
}

// TestRestoreRejectsDamage: a corrupted only-checkpoint must fail restore
// with a wrapped corruption error, and an empty directory must report
// ErrNoCheckpoint — never a half-restored hub.
func TestRestoreRejectsDamage(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: &scriptSource{}, Norm: p.NormFor(0)}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ckpt, err := hub.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	hub.Stop()

	raw, err := os.ReadFile(filepath.Join(ckpt, "sessions.bin"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0x10
	if err := os.WriteFile(filepath.Join(ckpt, "sessions.bin"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RestoreHubDir(dir, func(RestoredSession) (Source, error) {
		return &scriptSource{}, nil
	}); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("corrupted restore returned %v, want ErrCorrupt", err)
	}
	if _, _, err := RestoreHubDir(t.TempDir(), func(RestoredSession) (Source, error) {
		return &scriptSource{}, nil
	}); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("empty dir returned %v, want ErrNoCheckpoint", err)
	}
}

// TestCheckpointUnderLoad is the -race workout for copy-on-snapshot: paced
// shard loops serve board-fed sessions while checkpoints, snapshots,
// admissions and evictions race against them.
func TestCheckpointUnderLoad(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 2, MaxSessionsPerShard: 32, TickHz: 200, LatencyWindow: 64}, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := hub.Admit(boardSession(t, p, 0, uint64(i)+1)); err != nil {
			t.Fatal(err)
		}
	}
	hub.Start()
	dir := t.TempDir()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := hub.Checkpoint(dir); err != nil {
					t.Errorf("checkpoint %d/%d: %v", w, i, err)
					return
				}
				_ = hub.Snapshot()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			id, err := hub.Admit(boardSession(t, p, 0, uint64(100+i)))
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if err := hub.Evict(id); err != nil {
					t.Error(err)
				}
			}
		}
	}()
	wg.Wait()
	hub.Stop()

	// The last published checkpoint must be loadable and restorable.
	if _, _, err := RestoreHubDir(dir, func(RestoredSession) (Source, error) {
		return &scriptSource{}, nil
	}); err != nil {
		t.Fatalf("checkpoint taken under load does not restore: %v", err)
	}
}
