// Package serve is CognitiveArm's concurrent multi-session serving layer:
// one Hub owns a fleet of closed-loop EEG sessions and runs them on a small,
// fixed set of worker shards instead of a goroutine (or a whole process) per
// subject.
//
// # Architecture
//
// The seed system deploys one core.System per subject: its own board, its
// own freshly trained classifier, its own tick loop. That shape cannot reach
// the ROADMAP's production scale — training is repeated per deploy, models
// are duplicated per user, and loop goroutines multiply with the fleet. The
// hub inverts all three axes:
//
//   - Registry (registry.go) trains or deserialises each model exactly once
//     and shares it read-only across every session. Inference-mode forward
//     passes write no layer state (internal/nn) and forest traversal is
//     pure (internal/rf), so no lock sits on the hot path.
//
//   - Shards (shard.go) partition the fleet across N workers, each with one
//     tick-loop goroutine at TickHz. A tick pulls each session's due samples
//     through its Windower (filter → normalise → rolling window), then
//     coalesces every ready window into one batched classifier call per
//     model — cross-session batching, which turns S per-session Predict
//     dispatches into one PredictBatch whose tree-major forest traversal
//     amortises cache misses over the whole batch. The entire tick runs out
//     of a per-shard arena (tickArena: sample pop buffers, ready tables,
//     classifier groups, label slices, and the tensor.Workspace every
//     batched kernel draws scratch from), so steady-state serving performs
//     zero heap allocations per tick — see ARCHITECTURE.md "Memory model".
//     Admission control caps sessions per shard; sessions whose sources go
//     silent are evicted gracefully after MaxIdleTicks.
//
//   - Metrics (metrics.go) aggregate per-shard and fleet-wide p50/p99 tick
//     latency, throughput counters and drop/eviction counts, built on
//     internal/metrics percentiles, so capacity planning reads off one
//     snapshot.
//
// Sessions ingest from any Source: a board.Board (synthetic subjects, used
// by cmd/loadgen), or a RingSource over an internal/stream UDP/LSL inlet
// ring (networked subjects, used by cmd/cogarmd).
//
// Hubs run in two modes: Start launches paced shard loops for daemons, and
// TickAll advances every shard once for caller-paced benchmarks and tests.
//
// # Persistence
//
// The hub is durable serving infrastructure, not a cache: Hub.Checkpoint
// (persist.go) snapshots the whole fleet — registry models, every session's
// rolling window, per-channel IIR filter delay state, debounce ring,
// counters and shard assignment, plus samples still buffered in source
// rings — into a versioned, CRC-checked checkpoint directory via
// internal/checkpoint, and RestoreHub rebuilds a hub from one so a restarted
// daemon resumes without retraining and emits bitwise-identical labels for
// the same subsequent input. Capture is copy-on-snapshot: shard locks are
// held only to deep-copy in-memory state, never across serialization or disk
// I/O, so paced tick loops do not stall. Checkpoints are incremental by
// default: sessions carry a mutation counter, and only sessions that
// ingested samples since the previous checkpoint (plus newly resolved
// models) are deep-copied and written — the rest cost one manifest
// reference each, so checkpoint cost scales with churn, not fleet size,
// with a full-rewrite compaction every DefaultCompactEvery increments. See
// ARCHITECTURE.md for the on-disk format specification.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cognitivearm/internal/control"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/metrics"
	"cognitivearm/internal/obs"
	"cognitivearm/internal/tensor"
)

// Config sizes a Hub. Start from DefaultConfig; a zero Shards/KernelThreads
// auto-sizes from GOMAXPROCS, but MaxSessionsPerShard and TickHz must be set.
type Config struct {
	// Shards is the number of worker shards (and tick-loop goroutines).
	// 0 derives min(GOMAXPROCS, MaxAutoShards), so a deploy sized for the
	// host needs no tuning; negative is an error.
	Shards int
	// KernelThreads sizes the hub's shared tensor kernel pool — the workers
	// large batched GEMMs split row panels across (internal/tensor.Pool).
	// 0 derives min(GOMAXPROCS, MaxAutoKernelThreads); 1 forces the serial
	// kernels. Labels are bitwise-identical at any setting, so this is purely
	// a throughput knob.
	KernelThreads int
	// Quantize opts the registry into quantized inference: models built or
	// loaded after the hub is constructed are swapped for int8 (NN) or int16
	// (RF) twins when they pass the calibration agreement gate; models with
	// no quantized form (LSTM, Transformer, ensembles) serve exact f64.
	// Checkpoints always persist the exact f64 weights either way.
	Quantize bool
	// QuantizeMinAgreement overrides the calibration gate threshold
	// (0 = models.DefaultMinAgreement). A build whose quantized twin scores
	// below the gate fails hard rather than silently serving degraded labels.
	QuantizeMinAgreement float64
	// MaxSessionsPerShard bounds admission; the fleet capacity is
	// Shards × MaxSessionsPerShard.
	MaxSessionsPerShard int
	// TickHz is the classification rate of every shard loop (the paper's
	// 15 Hz action-label rate by default).
	TickHz float64
	// MaxIdleTicks evicts a session after this many consecutive ticks with
	// no samples from its source. 0 disables idle eviction.
	MaxIdleTicks int
	// LatencyWindow is how many recent tick latencies each shard retains for
	// the percentile snapshot.
	LatencyWindow int
	// Placement chooses the shard each admitted session lands on. nil means
	// LeastLoaded{} — emptiest shard first, refusing shards whose p99 tick
	// latency crowds the tick budget. Placement is serving policy, not fleet
	// state: it is not persisted in checkpoints, and a hub built by
	// RestoreHub uses the default policy.
	Placement Placement
	// DisableTelemetry turns off the hub's process-global instrumentation
	// (internal/obs counters, tick-stage histograms, lifecycle events) —
	// including the stage clock reads — so benchmarks can measure the
	// uninstrumented baseline. Serving behaviour is identical either way;
	// leave it false in production, the telemetry path is allocation-free.
	DisableTelemetry bool
}

// DefaultConfig returns a laptop-scale hub: 4 shards × 256 sessions at the
// paper's 15 Hz label rate.
func DefaultConfig() Config {
	return Config{
		Shards:              4,
		MaxSessionsPerShard: 256,
		TickHz:              control.ClassifyRateHz,
		MaxIdleTicks:        0,
		LatencyWindow:       512,
	}
}

// MaxAutoShards caps the Shards==0 GOMAXPROCS derivation: beyond this,
// extra tick loops add scheduling churn without batching benefit.
const MaxAutoShards = 8

// MaxAutoKernelThreads caps the KernelThreads==0 GOMAXPROCS derivation. The
// serving GEMMs saturate memory bandwidth before they run out of cores, so
// the auto pool stays small and leaves cores for shard tick loops.
const MaxAutoKernelThreads = 4

// autoSize derives a worker count from GOMAXPROCS, capped.
func autoSize(cap int) int {
	n := runtime.GOMAXPROCS(0)
	if n > cap {
		n = cap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// kernelThreadCount resolves Config.KernelThreads (0 = auto).
func kernelThreadCount(configured int) int {
	if configured > 0 {
		return configured
	}
	return autoSize(MaxAutoKernelThreads)
}

// ErrFleetFull is returned by Admit when every shard is at capacity.
var ErrFleetFull = fmt.Errorf("serve: fleet at capacity")

// SessionID identifies an admitted session for eviction and stats lookups.
type SessionID uint64

// Hub owns the fleet: a model registry, N shards, and the admission index.
type Hub struct {
	cfg   Config
	reg   *Registry
	place Placement
	// tel is the hub's process-global telemetry handle set (nil when
	// Config.DisableTelemetry); shards share it for the tick-path series.
	tel *serveObs

	// refusedFull / refusedOverload count admissions refused at the static
	// cap and at the latency budget respectively, surfaced in FleetSnapshot.
	refusedFull     atomic.Uint64
	refusedOverload atomic.Uint64

	mu      sync.Mutex
	shards  []*shard
	nextID  SessionID
	running bool
	// pool is the hub-owned kernel worker pool shared by every shard's tick
	// workspace (nil = serial kernels). Stop detaches it from the shards and
	// closes it; Start recreates it, so a stopped hub ticks serially.
	pool *tensor.Pool

	// ckptMu serialises Checkpoint (see its doc comment): the save-then-prune
	// sequence must not interleave between concurrent callers.
	ckptMu sync.Mutex

	// idxMu guards index alone. It is a leaf lock (never held while taking
	// another), so shards can remove idle-evicted sessions from the index
	// while holding their own lock without an ABBA deadlock against Admit's
	// hub-then-shard ordering.
	idxMu sync.Mutex
	index map[SessionID]*shard
}

// NewHub builds a hub around an existing registry (so several hubs — or a
// hub and offline evaluation — can share one trained model set).
func NewHub(cfg Config, reg *Registry) (*Hub, error) {
	if cfg.Shards == 0 {
		cfg.Shards = autoSize(MaxAutoShards)
	}
	if cfg.Shards < 1 || cfg.MaxSessionsPerShard < 1 {
		return nil, fmt.Errorf("serve: need >= 1 shard (%d) and >= 1 session per shard (%d)",
			cfg.Shards, cfg.MaxSessionsPerShard)
	}
	if cfg.TickHz <= 0 {
		return nil, fmt.Errorf("serve: tick rate must be positive (%g)", cfg.TickHz)
	}
	if cfg.LatencyWindow < 1 {
		cfg.LatencyWindow = DefaultConfig().LatencyWindow
	}
	if reg == nil {
		reg = NewRegistry()
	}
	place := cfg.Placement
	if place == nil {
		place = LeastLoaded{}
	}
	h := &Hub{cfg: cfg, reg: reg, place: place, index: map[SessionID]*shard{}}
	if !cfg.DisableTelemetry {
		h.tel = newServeObs()
	}
	if cfg.Quantize {
		reg.EnableQuantization(QuantPolicy{MinAgreement: cfg.QuantizeMinAgreement})
	}
	// The kernel pool exists from construction (TickAll-paced hubs never call
	// Start). tensor.NewPool returns nil for a single thread, which every
	// consumer treats as "serial".
	h.pool = tensor.NewPool(kernelThreadCount(cfg.KernelThreads))
	for i := 0; i < cfg.Shards; i++ {
		s := newShard(i, cfg)
		s.tel = h.tel
		s.pool = h.pool
		// Shard-initiated evictions (idle timeout) must also leave the
		// admission index, or churning clients leak an entry each.
		s.onEvict = h.dropIndex
		h.shards = append(h.shards, s)
	}
	return h, nil
}

// dropIndex removes an evicted session from the admission index.
func (h *Hub) dropIndex(id SessionID) {
	h.idxMu.Lock()
	delete(h.index, id)
	h.idxMu.Unlock()
}

// Registry exposes the hub's shared model registry.
func (h *Hub) Registry() *Registry { return h.reg }

// Config returns the hub's serving configuration. For a hub built by
// RestoreHub this is the checkpoint manifest's topology, which overrides
// whatever the restarting caller would otherwise have configured.
func (h *Hub) Config() Config { return h.cfg }

// Admit validates the session config, resolves its shared classifier from
// the registry, and hands the session to the hub's Placement policy. Under
// the default LeastLoaded policy it returns ErrFleetFull when every shard is
// at its static cap and ErrFleetOverloaded when capacity exists but every
// candidate shard's p99 tick latency already crowds the tick budget —
// refusals of both kinds are counted in FleetSnapshot.
func (h *Hub) Admit(sc SessionConfig) (SessionID, error) {
	clf, _, ok := h.reg.Get(sc.ModelKey)
	if !ok {
		return 0, fmt.Errorf("serve: model %q not in registry (have %v)", sc.ModelKey, h.reg.Keys())
	}
	if sc.Source == nil {
		return 0, fmt.Errorf("serve: session needs a sample source")
	}
	if sc.Channels <= 0 {
		sc.Channels = eeg.NumChannels
	}
	if sc.SampleRateHz <= 0 {
		sc.SampleRateHz = eeg.SampleRate
	}
	win, err := control.NewWindower(sc.SampleRateHz, sc.Channels, clf.WindowSize(), sc.Norm)
	if err != nil {
		return 0, err
	}
	return h.admitSession(&session{cfg: sc, clf: clf, win: win})
}

// admitSession assigns a fresh ID to a fully built session and registers it
// on the shard chosen by the hub's placement policy. It is the shared tail
// of Admit and RestoreSession (migration-in).
func (h *Hub) admitSession(sess *session) (SessionID, error) {
	return h.admitSessionWith(sess, h.place)
}

// admitSessionWith is admitSession under an explicit placement policy —
// PromoteSession substitutes one that ignores latency backpressure, because
// refusing a failover promotion loses the session outright.
func (h *Hub) admitSessionWith(sess *session, place Placement) (SessionID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	infos := make([]ShardInfo, len(h.shards))
	budget := 1 / h.cfg.TickHz
	for i, s := range h.shards {
		infos[i] = ShardInfo{
			Index:      i,
			Sessions:   s.len(),
			Capacity:   h.cfg.MaxSessionsPerShard,
			TickP99:    s.met.p99(),
			TickBudget: budget,
		}
	}
	idx, err := place.Place(infos)
	if err != nil {
		switch {
		case errors.Is(err, ErrFleetFull):
			h.refusedFull.Add(1)
			if h.tel != nil {
				h.tel.refusedFull.Inc()
				h.tel.events.Record(obs.EvRefuseFull, -1, 0, 0, 0)
			}
		case errors.Is(err, ErrFleetOverloaded):
			h.refusedOverload.Add(1)
			if h.tel != nil {
				h.tel.refusedOverload.Inc()
				h.tel.events.Record(obs.EvRefuseOverload, -1, 0, 0, 0)
			}
		}
		return 0, err
	}
	if idx < 0 || idx >= len(h.shards) {
		return 0, fmt.Errorf("serve: placement chose shard %d of %d", idx, len(h.shards))
	}
	h.nextID++
	sess.id = h.nextID
	target := h.shards[idx]
	target.add(sess)
	//cogarm:allow nolockblock -- idxMu is a documented leaf lock (see field comment); hub.mu→idxMu is the one fixed order and idxMu is never held across a call
	h.idxMu.Lock()
	h.index[sess.id] = target
	h.idxMu.Unlock()
	if h.tel != nil {
		h.tel.admissions.Inc()
		h.tel.sessions.Inc()
		h.tel.events.Record(obs.EvAdmit, idx, uint64(sess.id), 0, 0)
	}
	return sess.id, nil
}

// SourceAddrByTag reports the local ingest address (e.g. a UDP inlet's bound
// address) of the live session carrying tag, when its source exposes one via
// AddrSource. The cluster redirect protocol serves this to re-homing
// streamers so they can re-point at the promoted session's inlet without
// operator involvement. The address is read outside the shard lock — sources
// may consult sockets to answer.
func (h *Hub) SourceAddrByTag(tag string) (string, bool) {
	var src Source
	for _, s := range h.shards {
		s.mu.Lock()
		for _, sess := range s.sessions {
			if sess.cfg.Tag == tag {
				src = sess.cfg.Source
				break
			}
		}
		s.mu.Unlock()
		if src != nil {
			break
		}
	}
	if src == nil {
		return "", false
	}
	if as, ok := src.(AddrSource); ok {
		if addr := as.SourceAddr(); addr != "" {
			return addr, true
		}
	}
	return "", false
}

// SessionKeys returns a point-in-time map of live session IDs to their Tags —
// the routing view a cluster layer uses to decide which sessions move when
// ring membership changes.
func (h *Hub) SessionKeys() map[SessionID]string {
	out := make(map[SessionID]string, h.Sessions())
	for _, s := range h.shards {
		s.mu.Lock()
		for id, sess := range s.sessions {
			out[id] = sess.cfg.Tag
		}
		s.mu.Unlock()
	}
	return out
}

// Evict removes a session gracefully: the shard drops it at the next tick
// boundary and closes its source if it implements io.Closer.
func (h *Hub) Evict(id SessionID) error {
	h.idxMu.Lock()
	s, ok := h.index[id]
	if ok {
		delete(h.index, id)
	}
	h.idxMu.Unlock()
	if !ok {
		return fmt.Errorf("serve: session %d not found", id)
	}
	s.requestEvict(id)
	return nil
}

// Sessions returns the fleet-wide live session count.
func (h *Hub) Sessions() int {
	n := 0
	for _, s := range h.shards {
		n += s.len()
	}
	return n
}

// Session returns a point-in-time view of one session's decode counters.
func (h *Hub) Session(id SessionID) (SessionStats, bool) {
	h.idxMu.Lock()
	s, ok := h.index[id]
	h.idxMu.Unlock()
	if !ok {
		return SessionStats{}, false
	}
	return s.sessionStats(id)
}

// Start launches every shard's paced tick loop, recreating the kernel pool
// when a previous Stop released it. It is idempotent.
func (h *Hub) Start() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.running {
		return
	}
	h.running = true
	if h.pool == nil {
		h.pool = tensor.NewPool(kernelThreadCount(h.cfg.KernelThreads))
		for _, s := range h.shards {
			s.setPool(h.pool)
		}
	}
	for _, s := range h.shards {
		s.start()
	}
}

// Stop halts the shard loops, closes every remaining session, and releases
// the kernel pool (its worker goroutines exit; shards fall back to the
// serial kernels if ticked again). The hub may be restarted with Start.
func (h *Hub) Stop() {
	h.mu.Lock()
	running := h.running
	h.running = false
	pool := h.pool
	h.pool = nil
	h.mu.Unlock()
	for _, s := range h.shards {
		if running {
			s.stopLoop()
		}
		// Detach before closing the pool: a later tick on a stopped hub must
		// not enqueue onto closed workers.
		s.setPool(nil)
		s.closeAll()
	}
	pool.Close()
}

// TickAll advances every shard by exactly one tick and waits for all of
// them, running shards concurrently as the paced loops would. It is the
// caller-paced mode used by benchmarks and deterministic tests; do not mix
// with Start.
func (h *Hub) TickAll() {
	var wg sync.WaitGroup
	for _, s := range h.shards {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			s.tick()
		}(s)
	}
	wg.Wait()
}

// Snapshot aggregates per-shard and fleet-wide serving metrics.
func (h *Hub) Snapshot() FleetSnapshot {
	shardSnaps := make([]ShardSnapshot, 0, len(h.shards))
	var pooled []float64
	var fleet FleetSnapshot
	for _, s := range h.shards {
		var snap ShardSnapshot
		snap, pooled = s.snapshot(pooled)
		shardSnaps = append(shardSnaps, snap)
		fleet.Sessions += snap.Sessions
		fleet.Ticks += snap.Ticks
		fleet.Inferences += snap.Inferences
		fleet.Batches += snap.Batches
		fleet.Evictions += snap.Evictions
		fleet.SamplesIn += snap.SamplesIn
	}
	fleet.Shards = shardSnaps
	fleet.RefusedFull = h.refusedFull.Load()
	fleet.RefusedOverload = h.refusedOverload.Load()
	sort.Float64s(pooled)
	fleet.TickP50Ms = 1e3 * metrics.PercentileSorted(pooled, 0.50)
	fleet.TickP99Ms = 1e3 * metrics.PercentileSorted(pooled, 0.99)
	return fleet
}
