package serve

import (
	"testing"

	"cognitivearm/internal/board"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
)

// TestShardTickAllocFree is the tentpole's regression gate: once windows are
// full and the arena is warm, a shard tick — source drain, window push,
// cross-session batched classification, debounce — performs zero heap
// allocations, for both classifier kinds. Board sources synthesise EEG
// on-demand through ReadInto's buffer-recycling path, so the whole
// closed loop is covered, not just the classify call.
func TestShardTickAllocFree(t *testing.T) {
	reg, p := testFleet(t)
	// Add an NN decoder alongside testFleet's forest: untrained weights
	// serve identically to trained ones and build in microseconds.
	cnnSpec := models.Spec{Family: models.FamilyCNN, WindowSize: p.Config.WindowSize,
		Optimizer: "adam", LR: 1e-3, Dropout: 0.2, ConvLayers: 1, Filters: 8, Kernel: 5, Stride: 2, Pool: "none"}
	if _, _, err := reg.GetOrBuild("cnn", func() (models.Classifier, int64, error) {
		net, err := models.BuildNet(cnnSpec, 1)
		if err != nil {
			return nil, 0, err
		}
		return &models.NNClassifier{Net: net, Spec: cnnSpec}, models.OpsPerInference(cnnSpec), nil
	}); err != nil {
		t.Fatal(err)
	}

	for _, modelKey := range []string{"rf", "cnn"} {
		t.Run(modelKey, func(t *testing.T) {
			const sessions = 8
			hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: sessions, TickHz: 15, LatencyWindow: 32}, reg)
			if err != nil {
				t.Fatal(err)
			}
			defer hub.Stop()
			for i := 0; i < sessions; i++ {
				b := board.NewSyntheticCyton(eeg.NewSubject(0), uint64(i)*7+3, false)
				if err := b.Start(); err != nil {
					t.Fatal(err)
				}
				if _, err := hub.Admit(SessionConfig{ModelKey: modelKey, Source: b, Norm: p.NormFor(0)}); err != nil {
					t.Fatal(err)
				}
			}
			sh := hub.shards[0]
			for i := 0; i < 25; i++ { // fill windows, warm arena + workspace
				sh.tick()
			}
			if avg := testing.AllocsPerRun(50, sh.tick); avg != 0 {
				t.Fatalf("steady-state shard tick allocates %.1f times per tick, want 0", avg)
			}
		})
	}
}
