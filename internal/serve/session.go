package serve

import (
	"io"

	"cognitivearm/internal/control"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/stream"
)

// Source provides raw samples for one session. board.Board satisfies it
// directly; network-fed sessions use RingSource over an inlet's ring.
type Source interface {
	// Read drains up to max buffered samples (oldest first).
	Read(max int) []stream.Sample
}

// ReaderInto is the optional Source extension of the allocation-free tick
// path: the shard passes one per-shard sample buffer (reset between sessions)
// and the source appends into it instead of allocating a fresh slice per
// Read. Implementations may also recycle the Values buffers found in dst's
// spare capacity (board.SyntheticCyton does), so the returned samples are
// valid only until the next ReadInto with the same dst — the shard consumes
// them within the tick, which is the contract.
type ReaderInto interface {
	// ReadInto drains up to max buffered samples (oldest first), appending
	// them to dst.
	//
	//cogarm:zeroalloc
	ReadInto(dst []stream.Sample, max int) []stream.Sample
}

// PendingSnapshotter is the optional Source extension the checkpoint path
// uses: sources that buffer samples the session has not consumed yet (ring-
// backed network inlets) expose a non-destructive copy, so a fleet snapshot
// loses no in-flight data. Sources that synthesise samples on demand (boards)
// have nothing pending and simply do not implement it.
type PendingSnapshotter interface {
	// SnapshotPending returns a copy of buffered-but-unread samples, oldest
	// first, without consuming them.
	SnapshotPending() []stream.Sample
}

// AddrSource is the optional Source extension of the cluster redirect
// protocol: sources fed by a locally bound socket (UDP/LSL inlets) report
// the address a remote streamer should send to, so a re-homing client can
// discover the promoted session's new inlet instead of being re-pointed by
// hand. An empty string means "no routable ingest address".
type AddrSource interface {
	SourceAddr() string
}

// RingSource adapts a *stream.Ring — e.g. the receive buffer of a
// stream.UDPInlet or stream.LSLInlet — to the Source interface.
type RingSource struct {
	Ring *stream.Ring
	// Closer, when set, is released on session eviction — pass the inlet
	// here so evicting a network-fed session also closes its socket.
	Closer io.Closer
}

// Read implements Source.
func (r RingSource) Read(max int) []stream.Sample { return r.Ring.PopN(max) }

// ReadInto implements ReaderInto via the ring's buffer-reusing bulk pop.
//
//cogarm:zeroalloc
func (r RingSource) ReadInto(dst []stream.Sample, max int) []stream.Sample {
	return r.Ring.PopNInto(dst, max)
}

// SnapshotPending implements PendingSnapshotter.
func (r RingSource) SnapshotPending() []stream.Sample { return r.Ring.Snapshot() }

// PendingLen reports buffered-but-unread samples without copying them — the
// cheap dirtiness probe of the incremental checkpoint path.
func (r RingSource) PendingLen() int { return r.Ring.Len() }

// SourceAddr implements AddrSource when the attached Closer is an inlet that
// knows its bound address (stream.UDPInlet, stream.LSLOutlet-style Addr).
func (r RingSource) SourceAddr() string {
	if a, ok := r.Closer.(interface{ Addr() string }); ok {
		return a.Addr()
	}
	return ""
}

// Close implements io.Closer.
func (r RingSource) Close() error {
	if r.Closer != nil {
		return r.Closer.Close()
	}
	return nil
}

// SessionConfig describes one closed-loop session joining the fleet.
type SessionConfig struct {
	// ModelKey selects the shared classifier from the hub's registry. The
	// model must already be resolved (GetOrBuild/LoadNNFile) at Admit time.
	ModelKey string
	// Source feeds raw samples; ownership passes to the hub, which closes
	// it on eviction if it implements io.Closer.
	Source Source
	// Norm holds the subject's normalisation constants (core.Pipeline.NormFor).
	Norm dataset.Stats
	// Channels and SampleRateHz describe the source stream; zero values
	// default to the synthetic Cyton's 16 channels at 125 Hz.
	Channels     int
	SampleRateHz float64
	// Tag is an opaque caller label persisted with the session in fleet
	// checkpoints. The hub never interprets it; daemons use it to decide how
	// to rebind a live Source on restore (cmd/cogarmd tags sessions
	// "demo:<subject>:<idx>" or "inlet").
	Tag string
}

// SessionStats is a point-in-time view of one session's decode counters.
type SessionStats struct {
	ID SessionID
	// Decoded counts emitted labels (one per tick once the window fills).
	Decoded uint64
	// Actions counts labels per action class.
	Actions map[eeg.Action]uint64
	// Agreed counts ticks whose debounce supermajority fired — the labels
	// that would have moved an arm.
	Agreed uint64
	// IdleTicks is the current consecutive-silent-tick streak.
	IdleTicks int
}

// session is the per-subject state a shard ticks: ingest stage, shared
// classifier handle, and the actuation debounce of the single-subject
// Controller, minus the arm itself (fleet serving emits labels; actuation is
// the subscriber's concern).
type session struct {
	id  SessionID
	cfg SessionConfig
	clf models.Classifier
	win *control.Windower

	// sampleAcc implements the fractional samples-per-tick schedule
	// (e.g. 125 Hz / 15 Hz).
	sampleAcc float64
	debounce  control.Debouncer
	// ver counts signal-path mutations: it increments exactly when a tick
	// ingests samples for this session (which is also the only way windows,
	// filter delay lines, debounce state or decode counters change). The
	// incremental checkpoint path persists it and rewrites a session record
	// only when ver moved — same ID + same ver ⇒ bitwise-identical heavy
	// state. Scheduler-only fields that drift every tick regardless
	// (sampleAcc, idleTicks) ride in the manifest instead, so an idle session
	// stays checkpoint-clean.
	ver uint64
	// fed flips once the source delivers its first sample; idle eviction
	// only applies afterwards, so a freshly admitted network session gets
	// an unbounded grace period to connect.
	fed       bool
	idleTicks int

	decoded uint64
	agreed  uint64
	actions [eeg.NumActions]uint64
}

// due returns how many samples this tick should consume from the source.
//
//cogarm:zeroalloc
func (s *session) due(tickHz float64) int {
	s.sampleAcc += s.cfg.SampleRateHz / tickHz
	n := int(s.sampleAcc)
	s.sampleAcc -= float64(n)
	return n
}

// observe feeds one decoded label through the counters and the debounce.
//
//cogarm:zeroalloc
func (s *session) observe(a eeg.Action) {
	s.decoded++
	if int(a) >= 0 && int(a) < len(s.actions) {
		s.actions[a]++
	}
	if s.debounce.Observe(a) {
		s.agreed++
	}
}

// stats snapshots the counters. Callers must hold the owning shard's lock.
func (s *session) stats() SessionStats {
	st := SessionStats{ID: s.id, Decoded: s.decoded, Agreed: s.agreed, IdleTicks: s.idleTicks,
		Actions: map[eeg.Action]uint64{}}
	for i, n := range s.actions {
		if n > 0 {
			st.Actions[eeg.Action(i)] = n
		}
	}
	return st
}
