package serve

import (
	"errors"
	"runtime"
	"time"

	"cognitivearm/internal/checkpoint"
)

// StatusDoc is the /statusz document: one JSON object answering "what is
// this daemon doing right now" — fleet and per-shard serving state, health,
// checkpoint chain position, process runtime stats, and (in cluster mode)
// the ring view. Machines get /metrics; humans hitting /statusz get this.
type StatusDoc struct {
	Now        string  `json:"now"`
	UptimeSec  float64 `json:"uptime_sec"`
	Goroutines int     `json:"goroutines"`
	HeapBytes  uint64  `json:"heap_bytes"`

	Healthy bool   `json:"healthy"`
	Health  string `json:"health,omitempty"` // the failing probe's error text

	Fleet FleetSnapshot `json:"fleet"`

	// Checkpoint reports the newest on-disk checkpoint chain state; nil when
	// the daemon runs without persistence.
	Checkpoint *CheckpointStatus `json:"checkpoint,omitempty"`

	// Wal is the write-ahead-log status (wal.Log.Status); nil when the
	// daemon journals nothing.
	Wal any `json:"wal,omitempty"`

	// Cluster is the node's ring view; nil on a single-node daemon.
	Cluster any `json:"cluster,omitempty"`
}

// CheckpointStatus summarises the newest checkpoint chain under a root.
type CheckpointStatus struct {
	Root string `json:"root"`
	// Seq is the newest checkpoint's sequence number; Base is the full
	// checkpoint it chains from (0 = it is itself full); Increments is the
	// chain length since that base.
	Seq        uint64 `json:"seq"`
	Base       uint64 `json:"base"`
	Increments int    `json:"increments"`
	// Sessions is the fleet size the newest manifest records.
	Sessions int    `json:"sessions"`
	Error    string `json:"error,omitempty"` // manifest read failure, if any
}

var statusStart = time.Now()

// Status assembles the hub's /statusz document. ckptRoot names the
// checkpoint directory ("" = no persistence section); cluster, when non-nil,
// supplies the cluster section (e.g. cluster.Node.Status). A journaling
// daemon attaches the WAL section afterwards (Journal.Status).
func (h *Hub) Status(ckptRoot string, cluster func() any) StatusDoc {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	doc := StatusDoc{
		Now:        time.Now().UTC().Format(time.RFC3339Nano),
		UptimeSec:  time.Since(statusStart).Seconds(),
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  ms.HeapAlloc,
		Healthy:    true,
		Fleet:      h.Snapshot(),
	}
	if err := h.Health(); err != nil {
		doc.Healthy = false
		doc.Health = err.Error()
	}
	if ckptRoot != "" {
		doc.Checkpoint = checkpointStatus(ckptRoot)
	}
	if cluster != nil {
		doc.Cluster = cluster()
	}
	return doc
}

// checkpointStatus reads the newest manifest under root into a status
// summary. Failures are reported in the document, never returned: /statusz
// must render while the disk misbehaves.
func checkpointStatus(root string) *CheckpointStatus {
	cs := &CheckpointStatus{Root: root}
	man, err := checkpoint.LatestManifest(root)
	if err != nil {
		if !errors.Is(err, checkpoint.ErrNoCheckpoint) {
			cs.Error = err.Error()
		}
		return cs
	}
	cs.Seq = man.Seq
	cs.Base = man.Base
	cs.Increments = man.Increments
	cs.Sessions = len(man.Refs)
	if cs.Sessions == 0 {
		cs.Sessions = man.Sessions
	}
	return cs
}
