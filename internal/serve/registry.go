package serve

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/tensor"
)

// Registry holds the fleet's shared classifiers. Each key is built exactly
// once — by training or by deserialising a saved model — no matter how many
// sessions or goroutines ask for it, and the result is handed out read-only.
// This replaces the seed's train-per-deploy shape: a thousand sessions on
// one model cost one training run and one copy of the weights.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	// quant, when set, swaps every subsequently built or loaded model for its
	// quantized twin after the calibration gate passes (see EnableQuantization).
	quant *QuantPolicy
}

// QuantPolicy configures registry-wide quantized inference.
type QuantPolicy struct {
	// MinAgreement is the calibration gate threshold
	// (0 = models.DefaultMinAgreement).
	MinAgreement float64
	// Calibration builds the gate's window set for a model expecting
	// window×channels input. nil uses models.CalibrationWindows —
	// deterministic synthetic windows; supply recorded traffic for a
	// sharper gate.
	Calibration func(window, channels int) []*tensor.Matrix
}

// regEntry resolves exactly once: the goroutine that creates the entry runs
// the build and closes done; everyone else waits on done. (A sync.Once here
// would let a concurrent Get win the Do and poison the entry before the
// builder runs.)
type regEntry struct {
	done chan struct{}
	clf  models.Classifier
	macs int64
	err  error
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*regEntry{}}
}

// GetOrBuild returns the classifier for key, invoking build at most once per
// key across all callers (concurrent callers for the same key block until
// the first build finishes — singleflight semantics). build returns the
// classifier plus its per-inference MAC estimate for edge accounting.
func (r *Registry) GetOrBuild(key string, build func() (models.Classifier, int64, error)) (models.Classifier, int64, error) {
	r.mu.Lock()
	e, ok := r.entries[key]
	if !ok {
		e = &regEntry{done: make(chan struct{})}
		r.entries[key] = e
		r.mu.Unlock()
		e.clf, e.macs, e.err = build()
		if e.err != nil {
			// Leave the failed entry in place: retrying a deterministic
			// build would fail identically, and callers see the cause.
			e.err = fmt.Errorf("serve: build model %q: %w", key, e.err)
		} else if qc, qerr := r.maybeQuantize(e.clf); qerr != nil {
			// A twin that fails the agreement gate is a hard build error:
			// silently serving degraded labels is worse than not serving.
			e.clf, e.err = nil, fmt.Errorf("serve: quantize model %q: %w", key, qerr)
		} else {
			e.clf = qc
		}
		close(e.done)
		return e.clf, e.macs, e.err
	}
	r.mu.Unlock()
	<-e.done
	return e.clf, e.macs, e.err
}

// LoadFile deserialises any saved classifier (models.Save format — NN
// families, random forests, or registered ensembles) under key, once. MACs
// are derived from the stored spec where one exists.
func (r *Registry) LoadFile(key, path string) (models.Classifier, error) {
	clf, _, err := r.GetOrBuild(key, func() (models.Classifier, int64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		c, err := models.Load(f)
		if err != nil {
			return nil, 0, err
		}
		return c, macsFor(c), nil
	})
	return clf, err
}

// EnableQuantization turns on quantized inference for every model built or
// loaded from this point on: after a successful build the registry quantizes
// the classifier (models.Quantize), gates it on calibration agreement, and
// hands out the quantized twin. Models with no quantized form (LSTM,
// Transformer, ensembles) are served exact; a twin that fails the gate fails
// the build. Already-resolved entries are unaffected — enable before loading
// models (NewHub with Config.Quantize does this at construction).
func (r *Registry) EnableQuantization(p QuantPolicy) {
	r.mu.Lock()
	r.quant = &p
	r.mu.Unlock()
}

// maybeQuantize applies the registry's quantization policy to a freshly
// built classifier, returning it unchanged when quantization is disabled or
// the model has no quantized form.
func (r *Registry) maybeQuantize(clf models.Classifier) (models.Classifier, error) {
	r.mu.Lock()
	p := r.quant
	r.mu.Unlock()
	if p == nil {
		return clf, nil
	}
	opt := models.QuantOptions{MinAgreement: p.MinAgreement}
	if p.Calibration != nil {
		opt.Calibration = p.Calibration(clf.WindowSize(), eeg.NumChannels)
	}
	qc, err := models.Quantize(clf, opt)
	if errors.Is(err, models.ErrQuantUnsupported) {
		return clf, nil // no quantized form: serve the exact f64 model
	}
	if err != nil {
		return nil, err
	}
	return qc, nil
}

// macsFor estimates per-inference MACs for classifiers that carry a spec.
func macsFor(c models.Classifier) int64 {
	switch v := c.(type) {
	case *models.NNClassifier:
		return models.OpsPerInference(v.Spec)
	case *models.RFClassifier:
		return models.OpsPerInference(v.Spec)
	case *models.QuantizedClassifier:
		return macsFor(v.Base)
	default:
		return 0
	}
}

// LoadNNFile deserialises a saved NN classifier under key, once — LoadFile
// narrowed to the NN-typed contract existing callers rely on.
func (r *Registry) LoadNNFile(key, path string) (models.Classifier, error) {
	clf, err := r.LoadFile(key, path)
	if err != nil {
		return nil, err
	}
	if _, ok := clf.(*models.NNClassifier); !ok {
		return nil, fmt.Errorf("serve: %s holds a %T, not an NN classifier", path, clf)
	}
	return clf, nil
}

// Resolved returns the successfully built classifiers and their MAC
// estimates. In-flight builds are skipped rather than waited for: the
// checkpoint path must never block behind a training run.
func (r *Registry) Resolved() (map[string]models.Classifier, map[string]int64) {
	r.mu.Lock()
	entries := make(map[string]*regEntry, len(r.entries))
	for k, e := range r.entries {
		entries[k] = e
	}
	r.mu.Unlock()
	clfs := make(map[string]models.Classifier)
	macs := make(map[string]int64)
	for k, e := range entries {
		select {
		case <-e.done:
			if e.err == nil {
				clfs[k] = e.clf
				macs[k] = e.macs
			}
		default:
		}
	}
	return clfs, macs
}

// Get returns the classifier for key, or ok=false when the key is unknown
// or its build failed. A concurrent in-flight GetOrBuild for the same key is
// waited for, so a successful Get never races the build.
func (r *Registry) Get(key string) (models.Classifier, int64, bool) {
	r.mu.Lock()
	e, ok := r.entries[key]
	r.mu.Unlock()
	if !ok {
		return nil, 0, false
	}
	<-e.done
	if e.err != nil {
		return nil, 0, false
	}
	return e.clf, e.macs, true
}

// Keys lists resolved and in-flight keys in sorted order.
func (r *Registry) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.entries))
	for k := range r.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
