package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cognitivearm/internal/board"
	"cognitivearm/internal/core"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/stream"
)

// testFleet builds a registry with one fast shared RF decoder plus the
// pipeline that trained it.
func testFleet(t testing.TB) (*Registry, *core.Pipeline) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.SubjectIDs = []int{0}
	cfg.SessionSeconds = 24
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	spec := models.Spec{Family: models.FamilyRF, WindowSize: cfg.WindowSize, Trees: 20, MaxDepth: 10}
	if _, _, err := reg.GetOrBuild("rf", func() (models.Classifier, int64, error) {
		clf, _, err := p.TrainModel(spec)
		return clf, models.OpsPerInference(spec), err
	}); err != nil {
		t.Fatal(err)
	}
	return reg, p
}

// boardSession returns a SessionConfig backed by an on-demand synthetic
// board for the given subject.
func boardSession(t testing.TB, p *core.Pipeline, subject int, seed uint64) SessionConfig {
	t.Helper()
	b := board.NewSyntheticCyton(eeg.NewSubject(subject), seed, false)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	return SessionConfig{ModelKey: "rf", Source: b, Norm: p.NormFor(subject)}
}

func TestRegistryBuildsOnce(t *testing.T) {
	reg := NewRegistry()
	var builds atomic.Int64
	var wg sync.WaitGroup
	clfs := make([]models.Classifier, 16)
	for i := range clfs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clf, _, err := reg.GetOrBuild("shared", func() (models.Classifier, int64, error) {
				builds.Add(1)
				cfg := core.DefaultConfig()
				cfg.SubjectIDs = []int{0}
				cfg.SessionSeconds = 24
				p, err := core.New(cfg)
				if err != nil {
					return nil, 0, err
				}
				spec := models.Spec{Family: models.FamilyRF, WindowSize: cfg.WindowSize, Trees: 5, MaxDepth: 6}
				c, _, err := p.TrainModel(spec)
				return c, 0, err
			})
			if err != nil {
				t.Error(err)
			}
			clfs[i] = clf
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("model built %d times, want 1", n)
	}
	for i := 1; i < len(clfs); i++ {
		if clfs[i] != clfs[0] {
			t.Fatalf("caller %d got a different classifier instance", i)
		}
	}
	if _, _, ok := reg.Get("shared"); !ok {
		t.Fatal("Get should see the resolved entry")
	}
	if _, _, ok := reg.Get("missing"); ok {
		t.Fatal("Get should miss unknown keys")
	}
}

func TestAdmissionControlAndEviction(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 2, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()

	var ids []SessionID
	for i := 0; i < 4; i++ {
		id, err := hub.Admit(boardSession(t, p, 0, uint64(i)+1))
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if _, err := hub.Admit(boardSession(t, p, 0, 99)); err != ErrFleetFull {
		t.Fatalf("5th admit: got %v, want ErrFleetFull", err)
	}
	if n := hub.Sessions(); n != 4 {
		t.Fatalf("sessions = %d, want 4", n)
	}
	if err := hub.Evict(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := hub.Evict(ids[0]); err == nil {
		t.Fatal("double evict should fail")
	}
	if n := hub.Sessions(); n != 3 {
		t.Fatalf("sessions after evict = %d, want 3", n)
	}
	if _, err := hub.Admit(boardSession(t, p, 0, 100)); err != nil {
		t.Fatalf("admit after evict: %v", err)
	}
	if _, err := hub.Admit(SessionConfig{ModelKey: "nope", Source: RingSource{Ring: stream.NewRing(4)}}); err == nil {
		t.Fatal("unknown model key should be rejected")
	}
}

func TestHubBatchesAcrossSessions(t *testing.T) {
	reg, p := testFleet(t)
	const sessions = 12
	hub, err := NewHub(Config{Shards: 2, MaxSessionsPerShard: 16, TickHz: 15, LatencyWindow: 64}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	var ids []SessionID
	for i := 0; i < sessions; i++ {
		id, err := hub.Admit(boardSession(t, p, 0, uint64(i)*7+1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// 100-sample window at 125/15 samples per tick needs ~12 ticks to fill.
	const ticks = 40
	for i := 0; i < ticks; i++ {
		hub.TickAll()
	}
	snap := hub.Snapshot()
	if snap.Sessions != sessions {
		t.Fatalf("snapshot sessions = %d, want %d", snap.Sessions, sessions)
	}
	if snap.Inferences == 0 {
		t.Fatal("no inferences recorded")
	}
	// Coalescing: a shard classifies all its ready sessions in one call, so
	// batch count must be far below inference count.
	if snap.Batches >= snap.Inferences {
		t.Fatalf("batching did not coalesce: %d batches for %d inferences", snap.Batches, snap.Inferences)
	}
	meanBatch := float64(snap.Inferences) / float64(snap.Batches)
	if meanBatch < float64(sessions)/float64(len(snap.Shards))-0.5 {
		t.Fatalf("mean batch %.2f, want ≈ sessions/shard = %d", meanBatch, sessions/len(snap.Shards))
	}
	if snap.TickP99Ms <= 0 {
		t.Fatal("p99 tick latency missing from snapshot")
	}
	for _, id := range ids {
		st, ok := hub.Session(id)
		if !ok {
			t.Fatalf("session %d missing", id)
		}
		if st.Decoded == 0 {
			t.Fatalf("session %d decoded nothing", id)
		}
	}
}

func TestIdleSessionsAreEvicted(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 8, TickHz: 15, MaxIdleTicks: 3, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	// A session that streams briefly, then goes silent (client died).
	died := stream.NewRing(64)
	gen := eeg.NewGenerator(eeg.NewSubject(0), 9)
	for i := 0; i < 20; i++ {
		raw := gen.Next(eeg.Idle)
		died.Push(stream.Sample{Seq: uint64(i), Values: append([]float64(nil), raw[:]...)})
	}
	if _, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: RingSource{Ring: died}, Norm: p.NormFor(0)}); err != nil {
		t.Fatal(err)
	}
	// A session admitted before its client ever connects: never fed, so the
	// idle clock must not start.
	waiting := stream.NewRing(32)
	neverFed, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: RingSource{Ring: waiting}, Norm: p.NormFor(0)})
	if err != nil {
		t.Fatal(err)
	}
	live, err := hub.Admit(boardSession(t, p, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		hub.TickAll()
	}
	if n := hub.Sessions(); n != 2 {
		t.Fatalf("sessions = %d, want 2 (fed-then-silent evicted, waiting + live survive)", n)
	}
	if _, ok := hub.Session(live); !ok {
		t.Fatal("live session should survive")
	}
	if _, ok := hub.Session(neverFed); !ok {
		t.Fatal("never-fed session should wait for its client, not evict")
	}
	if snap := hub.Snapshot(); snap.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", snap.Evictions)
	}
}

func TestStreamFedSession(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 4, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()

	clock := stream.NewVirtualClock(0, 0)
	inlet, err := stream.NewUDPInlet(clock, 4096)
	if err != nil {
		t.Fatal(err)
	}
	outlet, err := stream.NewUDPOutlet(inlet.Addr(), clock, stream.LinkConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: RingSource{Ring: inlet.Ring}, Norm: p.NormFor(0)})
	if err != nil {
		t.Fatal(err)
	}

	// Stream enough EEG to fill the 100-sample window, then tick.
	gen := eeg.NewGenerator(eeg.NewSubject(0), 42)
	for i := 0; i < 400; i++ {
		raw := gen.Next(eeg.Left)
		outlet.Push(raw[:])
	}
	outlet.Close()
	deadline := time.Now().Add(2 * time.Second)
	for inlet.Ring.Len() < 150 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 40; i++ {
		hub.TickAll()
	}
	st, ok := hub.Session(id)
	if !ok {
		t.Fatal("session vanished")
	}
	if st.Decoded == 0 {
		t.Fatal("stream-fed session decoded nothing")
	}
}

// TestShortSamplesAreDropped feeds a network session truncated frames (the
// wire format lets a client claim any channel count): they must be dropped,
// not panic the shard, and full frames must still decode.
func TestShortSamplesAreDropped(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	ring := stream.NewRing(2048)
	id, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: RingSource{Ring: ring}, Norm: p.NormFor(0)})
	if err != nil {
		t.Fatal(err)
	}
	gen := eeg.NewGenerator(eeg.NewSubject(0), 3)
	seq := uint64(0)
	for i := 0; i < 200; i++ {
		if i%10 == 0 { // every 10th frame is malformed (4 of 16 channels)
			ring.Push(stream.Sample{Seq: seq, Values: []float64{1, 2, 3, 4}})
			seq++
		}
		raw := gen.Next(eeg.Idle)
		ring.Push(stream.Sample{Seq: seq, Values: append([]float64(nil), raw[:]...)})
		seq++
	}
	for i := 0; i < 30; i++ {
		hub.TickAll() // must not panic
	}
	st, ok := hub.Session(id)
	if !ok || st.Decoded == 0 {
		t.Fatalf("session should survive malformed frames and decode (ok=%v, decoded=%d)", ok, st.Decoded)
	}
}

// TestIdleEvictionClearsIndex pins the hub index bookkeeping: a session the
// shard evicts on idle timeout must disappear from Session lookups, and a
// manual Evict of it must report not-found.
func TestIdleEvictionClearsIndex(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 4, TickHz: 15, MaxIdleTicks: 2, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	ring := stream.NewRing(256)
	gen := eeg.NewGenerator(eeg.NewSubject(0), 11)
	for i := 0; i < 20; i++ {
		raw := gen.Next(eeg.Idle)
		ring.Push(stream.Sample{Seq: uint64(i), Values: append([]float64(nil), raw[:]...)})
	}
	id, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: RingSource{Ring: ring}, Norm: p.NormFor(0)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		hub.TickAll() // drains the 20 samples, then idles out after 2 ticks
	}
	if n := hub.Sessions(); n != 0 {
		t.Fatalf("sessions = %d, want 0", n)
	}
	if _, ok := hub.Session(id); ok {
		t.Fatal("idle-evicted session still resolvable via the index")
	}
	if err := hub.Evict(id); err == nil {
		t.Fatal("evicting an already idle-evicted session should report not-found")
	}
}

// TestPacedHubRace exercises the Start/Stop paced path with concurrent
// admission, eviction and snapshots — the -race workout for the hub.
func TestPacedHubRace(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 3, MaxSessionsPerShard: 32, TickHz: 200, LatencyWindow: 64}, reg)
	if err != nil {
		t.Fatal(err)
	}
	hub.Start()
	hub.Start() // idempotent

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []SessionID
			for i := 0; i < 6; i++ {
				id, err := hub.Admit(boardSession(t, p, 0, uint64(w*100+i)+1))
				if err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, id)
				time.Sleep(2 * time.Millisecond)
				_ = hub.Snapshot()
			}
			for _, id := range mine[:3] {
				if err := hub.Evict(id); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	time.Sleep(50 * time.Millisecond)
	snap := hub.Snapshot()
	if snap.Ticks == 0 {
		t.Fatal("paced loops never ticked")
	}
	hub.Stop()
	if n := hub.Sessions(); n != 0 {
		t.Fatalf("sessions after stop = %d, want 0", n)
	}
	// Restartable.
	hub.Start()
	hub.Stop()
}
