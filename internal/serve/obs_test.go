package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cognitivearm/internal/models"
	"cognitivearm/internal/obs"
	"cognitivearm/internal/stream"
	"cognitivearm/internal/tensor"
)

// stallSource stalls the drain stage: every Read sleeps long enough that the
// shard tick blows its budget, which is how we induce overload without a
// trained model in the loop.
type stallSource struct{ d time.Duration }

func (s *stallSource) Read(int) []stream.Sample {
	time.Sleep(s.d)
	return nil
}

// stubClassifier satisfies models.Classifier without training anything.
type stubClassifier struct{}

func (stubClassifier) Predict(*tensor.Matrix) int     { return 0 }
func (stubClassifier) Probs(*tensor.Matrix) []float64 { return []float64{1, 0, 0} }
func (stubClassifier) NumParams() int                 { return 1 }
func (stubClassifier) WindowSize() int                { return 16 }
func (stubClassifier) Name() string                   { return "stub" }

func stubRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if _, _, err := reg.GetOrBuild("stub", func() (models.Classifier, int64, error) {
		return stubClassifier{}, 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestHealthzFlips503UnderOverload drives a shard past its tick budget (a
// source that stalls the drain stage at 200 Hz) and asserts the failure is
// visible end to end: Hub.Health reports the overloaded shard and the admin
// plane's /healthz turns 503 with that error in the body.
func TestHealthzFlips503UnderOverload(t *testing.T) {
	cfg := Config{Shards: 1, MaxSessionsPerShard: 4, TickHz: 200, LatencyWindow: 8}
	hub, err := NewHub(cfg, stubRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Health(); err != nil {
		t.Fatalf("idle hub must be healthy, got %v", err)
	}
	if _, err := hub.Admit(SessionConfig{ModelKey: "stub", Source: &stallSource{d: 25 * time.Millisecond}}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.AdminMux(obs.AdminOptions{
		Registry: obs.NewRegistry(),
		Events:   obs.NewEventRing(16, 2),
		Health:   hub.Health,
	}))
	defer srv.Close()

	probe := func() int {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := probe(); code != http.StatusOK {
		t.Fatalf("pre-start probe = %d, want 200", code)
	}

	hub.Start()
	defer hub.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for hub.Health() == nil {
		if time.Now().After(deadline) {
			t.Fatal("hub never reported overload")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := hub.Health(); !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("health error %q should name the overloaded shard", err)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded probe = %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("503 body %q should carry the health error", body)
	}
}

// TestStatusDocRoundTrip serves a real fleet, renders /statusz through the
// admin mux, and decodes it back into a StatusDoc: field names, the fleet
// snapshot, the (empty) checkpoint chain, and the cluster section must all
// survive the JSON round trip.
func TestStatusDocRoundTrip(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 2, MaxSessionsPerShard: 8, TickHz: 60, LatencyWindow: 32}, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := hub.Admit(boardSession(t, p, 0, uint64(41+i))); err != nil {
			t.Fatal(err)
		}
	}
	hub.Start()
	defer hub.Stop()
	time.Sleep(120 * time.Millisecond) // a few ticks so counters move

	root := t.TempDir()
	srv := httptest.NewServer(obs.AdminMux(obs.AdminOptions{
		Registry: obs.NewRegistry(),
		Events:   obs.NewEventRing(16, 2),
		Health:   hub.Health,
		Status: func() any {
			return hub.Status(root, func() any { return map[string]string{"id": "node-a"} })
		},
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz = %d", resp.StatusCode)
	}

	var doc StatusDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	if !doc.Healthy {
		t.Fatalf("fleet should be healthy: %s", doc.Health)
	}
	if doc.Fleet.Sessions != 2 {
		t.Fatalf("fleet sessions = %d, want 2", doc.Fleet.Sessions)
	}
	if doc.Goroutines <= 0 || doc.HeapBytes == 0 {
		t.Fatalf("runtime stats missing: %+v", doc)
	}
	if doc.Checkpoint == nil || doc.Checkpoint.Root != root || doc.Checkpoint.Seq != 0 {
		t.Fatalf("checkpoint section = %+v, want empty chain under %q", doc.Checkpoint, root)
	}
	cl, ok := doc.Cluster.(map[string]any)
	if !ok || cl["id"] != "node-a" {
		t.Fatalf("cluster section = %#v", doc.Cluster)
	}
	if doc.Fleet.Ticks == 0 {
		t.Fatal("fleet tick counter should have moved")
	}
}

// TestServeTelemetryExposed drives a real fleet briefly and asserts the
// process-global registry exports nonzero serving series — the integration
// seam between the shard instrumentation and the exposition format.
func TestServeTelemetryExposed(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 8, TickHz: 120, LatencyWindow: 32}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Admit(boardSession(t, p, 0, 7)); err != nil {
		t.Fatal(err)
	}
	hub.Start()
	time.Sleep(150 * time.Millisecond)
	hub.Stop()

	var sb strings.Builder
	if err := obs.Default().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, series := range []string{
		"cogarm_serve_ticks_total",
		"cogarm_serve_samples_total",
		`cogarm_serve_tick_stage_seconds_count{stage="drain"}`,
		`cogarm_serve_tick_stage_seconds_count{stage="window"}`,
		"cogarm_serve_tick_seconds_count",
	} {
		idx := strings.Index(out, series+" ")
		if idx < 0 {
			t.Fatalf("series %q missing from exposition", series)
		}
		line := out[idx:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
		}
		if strings.HasSuffix(line, " 0") {
			t.Fatalf("series %q is zero after serving: %s", series, line)
		}
	}
}
