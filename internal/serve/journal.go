package serve

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"cognitivearm/internal/checkpoint"
	"cognitivearm/internal/models"
	"cognitivearm/internal/obs"
	"cognitivearm/internal/wal"
)

// The serve journal: the hub's write-ahead log. Between checkpoints, every
// flush captures the dirty-session delta (the same sweep incremental
// checkpoints and replication tails run), appends it to the WAL as one
// Merkle-sealed batch, and drains the process event ring into the same batch
// as the durable audit trail. Recovery is checkpoint base + WAL replay:
// ReplayWAL folds every sealed entry past the checkpoint's WalSeq over the
// loaded state, so a daemon killed between checkpoints loses at most one
// flush interval instead of one checkpoint interval.
//
// Layering: the journal lives in serve because it converts hub state to WAL
// entries, exactly as persist.go converts hub state to checkpoint files.
// internal/wal stays ignorant of sessions; internal/checkpoint stays ignorant
// of the log. The one shared artifact is Manifest.WalSeq — the fence that
// keeps replay from applying entries a newer checkpoint already contains.

// walModel is the KindModel payload: one resolved model, frozen at journal
// time, so a WAL-only replay can rebuild sessions with no checkpoint at all.
type walModel struct {
	Key     string
	MACs    int64
	Payload []byte // models.Save bytes
}

// Journal couples a Hub to a wal.Log. All methods are safe for concurrent
// use; Flush and Checkpoint serialize on the journal's own mutex, never on a
// tick-path lock.
type Journal struct {
	hub *Hub
	log *wal.Log

	mu        sync.Mutex
	lastRefs  map[uint64]checkpoint.SessionRef
	sent      map[string]struct{} // models already journaled this process
	lastAudit uint64              // last event-ring seq drained
	events    []obs.Event         // reusable snapshot buffer
}

// NewJournal opens (and, after a crash, recovers) the WAL in opts.Dir and
// binds it to hub. The returned RecoveryInfo is the WAL's own report of what
// Open found; the caller decides whether to replay it (ReplayWAL) before the
// hub serves.
//
// The first Flush after construction captures the full fleet (lastRefs
// starts nil), so the WAL always holds a complete base from this process —
// a crash before the first checkpoint is still WAL-recoverable.
func NewJournal(hub *Hub, opts wal.Options) (*Journal, wal.RecoveryInfo, error) {
	if hub == nil {
		return nil, wal.RecoveryInfo{}, fmt.Errorf("serve: journal: nil hub")
	}
	log, info, err := wal.Open(opts)
	if err != nil {
		return nil, info, err
	}
	return &Journal{
		hub:  hub,
		log:  log,
		sent: make(map[string]struct{}),
	}, info, nil
}

// Log exposes the underlying WAL for status reporting and admin tooling.
func (j *Journal) Log() *wal.Log { return j.log }

// Status returns the WAL section of /statusz (assign to StatusDoc.Wal).
func (j *Journal) Status() wal.Status { return j.log.Status() }

// Flush journals one batch: every model not yet journaled this process, a
// full record plus decision summary per dirty session, the refs manifest
// (the authoritative live view replay prunes and overlays by), and the audit
// events recorded since the previous flush — then seals the batch, which is
// the durability point. An empty interval (nothing dirty, no events) appends
// and seals nothing. Returns the batch's Merkle root and the last sealed
// entry sequence.
func (j *Journal) Flush() (root [wal.HashSize]byte, last uint64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	//cogarm:allow nolockblock -- journal mutex exists to serialize flush/checkpoint I/O; no tick-path code takes it
	return j.flushLocked()
}

func (j *Journal) flushLocked() (root [wal.HashSize]byte, last uint64, err error) {
	delta := j.hub.CaptureDelta(j.lastRefs)
	j.events = obs.DefaultEvents().Snapshot(j.events[:0])
	pendingEvents := 0
	for _, ev := range j.events {
		if ev.Seq > j.lastAudit {
			pendingEvents++
		}
	}
	if len(delta.Sessions) == 0 && pendingEvents == 0 && j.refsUnchanged(delta) {
		return root, j.log.LastSealed(), nil
	}

	keys := make([]string, 0, len(delta.Models))
	for key := range delta.Models {
		if _, done := j.sent[key]; !done {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		var payload bytes.Buffer
		if err := models.Save(&payload, delta.Models[key]); err != nil {
			return root, 0, fmt.Errorf("serve: journal model %q: %w", key, err)
		}
		var buf bytes.Buffer
		wm := walModel{Key: key, MACs: delta.ModelMACs[key], Payload: payload.Bytes()}
		if err := gob.NewEncoder(&buf).Encode(&wm); err != nil {
			return root, 0, fmt.Errorf("serve: journal model %q: %w", key, err)
		}
		if _, err := j.log.Append(wal.KindModel, buf.Bytes()); err != nil {
			return root, 0, err
		}
		j.sent[key] = struct{}{}
	}
	var scratch []byte
	for i := range delta.Sessions {
		rec := &delta.Sessions[i]
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
			return root, 0, fmt.Errorf("serve: journal session %d: %w", rec.ID, err)
		}
		if _, err := j.log.Append(wal.KindSession, buf.Bytes()); err != nil {
			return root, 0, err
		}
		scratch = wal.EncodeDecision(scratch[:0], wal.Decision{
			Session: rec.ID, Ver: rec.Ver, Decoded: rec.Decoded, Agreed: rec.Agreed,
		})
		if _, err := j.log.Append(wal.KindDecision, scratch); err != nil {
			return root, 0, err
		}
	}
	man := delta.Manifest
	man.Sessions = len(delta.Sessions)
	var mbuf bytes.Buffer
	if err := gob.NewEncoder(&mbuf).Encode(&man); err != nil {
		return root, 0, fmt.Errorf("serve: journal refs: %w", err)
	}
	if _, err := j.log.Append(wal.KindRefs, mbuf.Bytes()); err != nil {
		return root, 0, err
	}
	maxEv := j.lastAudit
	for _, ev := range j.events {
		if ev.Seq <= j.lastAudit {
			continue
		}
		scratch = wal.EncodeEvent(scratch[:0], ev)
		if _, err := j.log.Append(wal.KindAudit, scratch); err != nil {
			return root, 0, err
		}
		if ev.Seq > maxEv {
			maxEv = ev.Seq
		}
	}
	root, _, last, err = j.log.Seal()
	if err != nil {
		return root, 0, err
	}
	// Only a sealed batch advances the dirty fence and the audit cursor: an
	// unsealed append is exactly what crash recovery drops, so it must be
	// recaptured (still dirty, still undrained) by the next flush.
	j.lastRefs = delta.Manifest.RefIndex()
	j.lastAudit = maxEv
	return root, last, nil
}

// refsUnchanged reports whether delta's live view matches the last journaled
// one — if a session departed (or appeared with no dirty record, e.g. via
// promotion), the refs manifest must still be journaled even when no session
// record is.
func (j *Journal) refsUnchanged(delta *checkpoint.FleetState) bool {
	if len(delta.Manifest.Refs) != len(j.lastRefs) {
		return false
	}
	for _, ref := range delta.Manifest.Refs {
		prev, ok := j.lastRefs[ref.ID]
		if !ok || prev.Ver != ref.Ver {
			return false
		}
	}
	return true
}

// Checkpoint flushes, writes a checkpoint fenced at the WAL's sealed
// frontier, and — only after the checkpoint is durable — rotates the active
// segment and truncates every segment the checkpoint fully covers. A crash
// at any point leaves a recoverable pair: before the checkpoint, the old
// base plus a longer WAL; after it, the new base plus whatever the WAL still
// holds (replay skips entries at or below the manifest's WalSeq).
func (j *Journal) Checkpoint(root string) (string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	//cogarm:allow nolockblock -- journal mutex exists to serialize flush/checkpoint I/O; no tick-path code takes it
	if _, _, err := j.flushLocked(); err != nil {
		return "", err
	}
	last := j.log.LastSealed()
	//cogarm:allow nolockblock -- journal mutex exists to serialize flush/checkpoint I/O; no tick-path code takes it
	dir, err := j.hub.CheckpointWithWal(root, last)
	if err != nil {
		return "", err
	}
	//cogarm:allow nolockblock -- same journal-private lock; rotation is the compaction half of the checkpoint
	if err := j.log.Rotate(); err != nil {
		return dir, fmt.Errorf("serve: wal rotate after checkpoint: %w", err)
	}
	//cogarm:allow nolockblock -- same journal-private lock; truncation is the compaction half of the checkpoint
	if _, err := j.log.TruncateBelow(last); err != nil {
		return dir, fmt.Errorf("serve: wal truncate after checkpoint: %w", err)
	}
	return dir, nil
}

// Close seals and closes the underlying WAL.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	//cogarm:allow nolockblock -- journal mutex exists to serialize flush/checkpoint I/O; no tick-path code takes it
	return j.log.Close()
}

// ReplayWAL folds the sealed WAL entries in dir over base — the recovery
// composition `checkpoint base + WAL tail`. Entries with seq at or below
// base's Manifest.WalSeq are already inside the checkpoint and are skipped.
// A nil base replays from nothing: legal whenever the WAL holds a full base
// (which it does for any WAL written by this process structure, since the
// first flush after daemon start is a full capture). Returns the replayed
// state (base itself when the WAL adds nothing), and how many entries were
// applied.
//
// The folded state is exactly what the crashed hub's next checkpoint would
// have contained as of the last sealed flush: latest record per session,
// departures pruned by the final refs view, volatile scheduler fields
// overlaid from it. Audit and decision entries are durable history, not
// state — replay skips them.
func ReplayWAL(dir string, base *checkpoint.FleetState) (*checkpoint.FleetState, int, error) {
	var fence uint64
	if base != nil {
		fence = base.Manifest.WalSeq
	}
	recs := make(map[uint64]checkpoint.SessionRecord)
	newModels := make(map[string]walModel)
	var lastMan *checkpoint.Manifest
	applied := 0
	err := wal.Dump(dir, func(e wal.Entry) error {
		if !e.Sealed || e.Seq <= fence {
			return nil
		}
		switch e.Kind {
		case wal.KindSession:
			var rec checkpoint.SessionRecord
			if err := gob.NewDecoder(bytes.NewReader(e.Data)).Decode(&rec); err != nil {
				return fmt.Errorf("%w: wal entry %d: session record: %v", checkpoint.ErrCorrupt, e.Seq, err)
			}
			recs[rec.ID] = rec
		case wal.KindRefs:
			var man checkpoint.Manifest
			if err := gob.NewDecoder(bytes.NewReader(e.Data)).Decode(&man); err != nil {
				return fmt.Errorf("%w: wal entry %d: refs manifest: %v", checkpoint.ErrCorrupt, e.Seq, err)
			}
			lastMan = &man
		case wal.KindModel:
			var wm walModel
			if err := gob.NewDecoder(bytes.NewReader(e.Data)).Decode(&wm); err != nil {
				return fmt.Errorf("%w: wal entry %d: model: %v", checkpoint.ErrCorrupt, e.Seq, err)
			}
			newModels[wm.Key] = wm
		case wal.KindAudit, wal.KindDecision:
			// History, not state.
		default:
			return fmt.Errorf("%w: wal entry %d: unknown kind %d", checkpoint.ErrCorrupt, e.Seq, e.Kind)
		}
		applied++
		return nil
	})
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return base, 0, nil // no WAL directory yet: nothing to fold
		}
		return nil, 0, err
	}
	if applied == 0 {
		return base, 0, nil
	}
	if base == nil {
		if lastMan == nil {
			return nil, 0, fmt.Errorf("%w: wal replay without a checkpoint base needs a refs entry", checkpoint.ErrCorrupt)
		}
		base = &checkpoint.FleetState{
			Manifest:  *lastMan,
			Models:    make(map[string]models.Classifier),
			ModelMACs: make(map[string]int64),
		}
	}
	for key, wm := range newModels {
		if _, ok := base.Models[key]; ok {
			continue
		}
		clf, err := models.Load(bytes.NewReader(wm.Payload))
		if err != nil {
			return nil, 0, fmt.Errorf("%w: wal model %q: %v", checkpoint.ErrCorrupt, key, err)
		}
		base.Models[key] = clf
		base.ModelMACs[key] = wm.MACs
	}
	byID := make(map[uint64]*checkpoint.SessionRecord, len(base.Sessions)+len(recs))
	for i := range base.Sessions {
		byID[base.Sessions[i].ID] = &base.Sessions[i]
	}
	for id := range recs {
		rec := recs[id]
		byID[id] = &rec
	}
	if lastMan != nil {
		// The final refs view is authoritative: prune departures, overlay the
		// volatile scheduler fields, and insist every live ref resolves at
		// exactly its journaled version — anything else means the WAL and the
		// checkpoint disagree about history, which replay must not paper over.
		keep := make(map[uint64]checkpoint.SessionRef, len(lastMan.Refs))
		for _, ref := range lastMan.Refs {
			keep[ref.ID] = ref
		}
		for id := range byID {
			if _, live := keep[id]; !live {
				delete(byID, id)
			}
		}
		for id, ref := range keep {
			rec, ok := byID[id]
			if !ok {
				return nil, 0, fmt.Errorf("%w: wal refs name live session %d with no record in checkpoint or wal", checkpoint.ErrCorrupt, id)
			}
			if rec.Ver != ref.Ver {
				return nil, 0, fmt.Errorf("%w: wal session %d at ver %d, refs expect %d", checkpoint.ErrCorrupt, id, rec.Ver, ref.Ver)
			}
			rec.SampleAcc = ref.SampleAcc
			rec.IdleTicks = ref.IdleTicks
		}
		base.Manifest.Refs = lastMan.Refs
		if lastMan.NextID > base.Manifest.NextID {
			base.Manifest.NextID = lastMan.NextID
		}
	}
	out := make([]checkpoint.SessionRecord, 0, len(byID))
	for _, rec := range byID {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	base.Sessions = out
	base.Manifest.Sessions = len(out)
	return base, applied, nil
}

// RestoreHubWal is the WAL-aware resume path: load the newest valid
// checkpoint under ckptRoot (tolerating its absence), replay the WAL tail in
// walDir over it, and restore a hub from the result. It returns the hub, the
// checkpoint directory used ("" when the restore was WAL-only), and the
// number of WAL entries applied. checkpoint.ErrNoCheckpoint (wrapped) comes
// back only when neither a checkpoint nor a replayable WAL exists.
func RestoreHubWal(ckptRoot, walDir string, newSource SourceFactory) (*Hub, string, int, error) {
	base, dir, err := checkpoint.LoadLatest(ckptRoot)
	if err != nil {
		base, dir = nil, ""
	}
	state, applied, rerr := ReplayWAL(walDir, base)
	if rerr != nil {
		return nil, "", 0, rerr
	}
	if state == nil {
		if err != nil {
			return nil, "", 0, err // no checkpoint, empty WAL: surface the load error
		}
		return nil, "", 0, fmt.Errorf("serve: restore: empty checkpoint and wal")
	}
	hub, err := RestoreHub(state, newSource)
	if err != nil {
		return nil, "", 0, err
	}
	return hub, dir, applied, nil
}
