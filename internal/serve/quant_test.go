package serve

import (
	"strings"
	"testing"

	"cognitivearm/internal/core"
	"cognitivearm/internal/models"
)

func TestHubShardsAutoDerived(t *testing.T) {
	hub, err := NewHub(Config{Shards: 0, MaxSessionsPerShard: 4, TickHz: 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	if n := hub.Config().Shards; n < 1 || n > MaxAutoShards {
		t.Fatalf("derived shards = %d, want 1..%d", n, MaxAutoShards)
	}
	if _, err := NewHub(Config{Shards: -1, MaxSessionsPerShard: 4, TickHz: 15}, nil); err == nil {
		t.Fatal("negative shard count must be rejected")
	}
}

// quantFleet builds a registry with quantization enabled before any model
// resolves: a trained RF, an untrained CNN, and an LSTM with no int8 form.
func quantFleet(t *testing.T) (*Registry, *core.Pipeline) {
	t.Helper()
	_, p := testFleet(t) // reuse testFleet's trained pipeline
	reg := NewRegistry()
	reg.EnableQuantization(QuantPolicy{MinAgreement: 0.9})
	rfSpec := models.Spec{Family: models.FamilyRF, WindowSize: p.Config.WindowSize, Trees: 20, MaxDepth: 10}
	if _, _, err := reg.GetOrBuild("rf", func() (models.Classifier, int64, error) {
		clf, _, err := p.TrainModel(rfSpec)
		return clf, models.OpsPerInference(rfSpec), err
	}); err != nil {
		t.Fatal(err)
	}
	cnnSpec := models.Spec{Family: models.FamilyCNN, WindowSize: p.Config.WindowSize,
		Optimizer: "adam", LR: 1e-3, ConvLayers: 1, Filters: 16, Kernel: 5, Stride: 2, Pool: "none"}
	if _, _, err := reg.GetOrBuild("cnn", func() (models.Classifier, int64, error) {
		net, err := models.BuildNet(cnnSpec, 1)
		if err != nil {
			return nil, 0, err
		}
		return &models.NNClassifier{Net: net, Spec: cnnSpec}, models.OpsPerInference(cnnSpec), nil
	}); err != nil {
		t.Fatal(err)
	}
	lstmSpec := models.Spec{Family: models.FamilyLSTM, WindowSize: p.Config.WindowSize,
		Optimizer: "adam", LR: 1e-3, LSTMLayers: 1, Hidden: 8}
	if _, _, err := reg.GetOrBuild("lstm", func() (models.Classifier, int64, error) {
		net, err := models.BuildNet(lstmSpec, 1)
		if err != nil {
			return nil, 0, err
		}
		return &models.NNClassifier{Net: net, Spec: lstmSpec}, models.OpsPerInference(lstmSpec), nil
	}); err != nil {
		t.Fatal(err)
	}
	return reg, p
}

func TestRegistryQuantizesSupportedModels(t *testing.T) {
	reg, _ := quantFleet(t)
	for _, key := range []string{"rf", "cnn"} {
		clf, _, ok := reg.Get(key)
		if !ok {
			t.Fatalf("%s missing", key)
		}
		qc, isQ := clf.(*models.QuantizedClassifier)
		if !isQ {
			t.Fatalf("%s: got %T, want *models.QuantizedClassifier", key, clf)
		}
		if qc.Agreement < 0.9 {
			t.Fatalf("%s: gate passed at agreement %.4f", key, qc.Agreement)
		}
	}
	// LSTM has no quantized form: the exact model serves.
	clf, _, ok := reg.Get("lstm")
	if !ok {
		t.Fatal("lstm missing")
	}
	if _, isQ := clf.(*models.QuantizedClassifier); isQ {
		t.Fatalf("lstm should serve exact f64, got %T", clf)
	}
}

func TestRegistryQuantizeGateFailsBuild(t *testing.T) {
	_, p := testFleet(t)
	reg := NewRegistry()
	// An unattainable gate (agreement can never exceed 1.0) must fail the
	// build and surface the cause, not silently serve the twin.
	reg.EnableQuantization(QuantPolicy{MinAgreement: 1.1})
	spec := models.Spec{Family: models.FamilyRF, WindowSize: p.Config.WindowSize, Trees: 5, MaxDepth: 6}
	_, _, err := reg.GetOrBuild("rf", func() (models.Classifier, int64, error) {
		clf, _, err := p.TrainModel(spec)
		return clf, 0, err
	})
	if err == nil || !strings.Contains(err.Error(), "agreement") {
		t.Fatalf("gate failure should fail the build with the agreement, got %v", err)
	}
	if _, _, ok := reg.Get("rf"); ok {
		t.Fatal("failed build must not resolve")
	}
}

// TestHubQuantizedEndToEnd serves a mixed quantized fleet through ticks and
// checks sessions decode labels (the quantized classifiers are live on the
// batched tick path, with the kernel pool attached).
func TestHubQuantizedEndToEnd(t *testing.T) {
	reg, p := quantFleet(t)
	hub, err := NewHub(Config{Shards: 2, MaxSessionsPerShard: 8, TickHz: 15,
		LatencyWindow: 16, KernelThreads: 2, Quantize: true}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	var ids []SessionID
	for i := 0; i < 6; i++ {
		sc := boardSession(t, p, 0, uint64(i)*13+1)
		sc.ModelKey = []string{"rf", "cnn", "lstm"}[i%3]
		id, err := hub.Admit(sc)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 40; i++ {
		hub.TickAll()
	}
	for _, id := range ids {
		st, ok := hub.Session(id)
		if !ok {
			t.Fatalf("session %d vanished", id)
		}
		if st.Decoded == 0 {
			t.Fatalf("session %d decoded nothing after 40 ticks", id)
		}
	}
}

// TestHubParallelEquivalence runs the same fleet through a serial hub and a
// pooled hub and requires identical per-session label counts: the parallel
// blocked GEMM path must be bitwise-equivalent to the serial kernels, so
// thread count can never change decodes.
func TestHubParallelEquivalence(t *testing.T) {
	reg, p := testFleet(t)
	cnnSpec := models.Spec{Family: models.FamilyCNN, WindowSize: p.Config.WindowSize,
		Optimizer: "adam", LR: 1e-3, ConvLayers: 1, Filters: 16, Kernel: 5, Stride: 2, Pool: "none"}
	if _, _, err := reg.GetOrBuild("cnn", func() (models.Classifier, int64, error) {
		net, err := models.BuildNet(cnnSpec, 1)
		if err != nil {
			return nil, 0, err
		}
		return &models.NNClassifier{Net: net, Spec: cnnSpec}, 0, nil
	}); err != nil {
		t.Fatal(err)
	}

	run := func(threads int) map[int]SessionStats {
		hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 16, TickHz: 15,
			LatencyWindow: 16, KernelThreads: threads}, reg)
		if err != nil {
			t.Fatal(err)
		}
		defer hub.Stop()
		ids := make([]SessionID, 0, 8)
		for i := 0; i < 8; i++ {
			sc := boardSession(t, p, 0, uint64(i)*7+5)
			sc.ModelKey = "cnn" // big enough GEMM to cross the parallel threshold
			id, err := hub.Admit(sc)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 0; i < 30; i++ {
			hub.TickAll()
		}
		out := map[int]SessionStats{}
		for i, id := range ids {
			st, ok := hub.Session(id)
			if !ok {
				t.Fatalf("session %d vanished", id)
			}
			out[i] = st
		}
		return out
	}

	serial := run(1)
	parallel := run(4)
	for i, want := range serial {
		got := parallel[i]
		if want.Decoded == 0 {
			t.Fatalf("session %d decoded nothing", i)
		}
		if got.Decoded != want.Decoded || got.Agreed != want.Agreed {
			t.Fatalf("session %d: parallel decodes (%d,%d) != serial (%d,%d)",
				i, got.Decoded, got.Agreed, want.Decoded, want.Agreed)
		}
		for a, n := range want.Actions {
			if got.Actions[a] != n {
				t.Fatalf("session %d action %v: parallel %d != serial %d", i, a, got.Actions[a], n)
			}
		}
	}
}
