package serve

import (
	"io"
	"sync"
	"time"

	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/obs"
	"cognitivearm/internal/stream"
	"cognitivearm/internal/tensor"
)

// shard owns a partition of the fleet and ticks it on one goroutine. All
// session state is confined to the shard lock; the only shared hot-path
// object is the read-only classifier.
type shard struct {
	id  int
	cfg Config
	// onEvict notifies the hub that a session left this shard (idle timeout
	// or close), so the admission index stays in sync. It must only take
	// leaf locks: it is invoked while the shard lock is held.
	onEvict func(SessionID)
	// tel is the hub's shared telemetry handle set (nil = telemetry
	// disabled). Everything it reaches is lock-free and allocation-free, so
	// it is safe to touch under the shard lock and on the zero-alloc tick
	// path.
	tel *serveObs

	mu       sync.Mutex
	sessions map[SessionID]*session
	evictq   []SessionID

	// pool is the hub-owned kernel worker pool the tick workspace attaches to
	// (nil = serial kernels). Guarded by mu: the hub swaps it on Start/Stop
	// and the tick re-attaches it to the arena workspace each reset.
	pool *tensor.Pool

	// arena is the shard's tick scratch: every per-tick temporary lives here
	// and is reused across ticks, so steady-state serving allocates nothing.
	// It is only touched under the shard lock (ticks and captures serialise
	// on it), never shared between shards.
	arena tickArena

	loopMu  sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	running bool

	met shardMetrics
}

// tickArena owns the buffers one tick churns through: the pop buffer sources
// drain into, the ready-window tables the batch phase coalesces, the
// per-classifier grouping, the label output, and the tensor.Workspace every
// batched kernel draws its matrices from. Reset-by-truncation at the top of
// each tick recycles all of it; capacity is retained at the fleet's
// high-water mark.
type tickArena struct {
	ws        *tensor.Workspace
	popBuf    []stream.Sample
	readySess []*session
	readyWin  []*tensor.Matrix
	groups    []clfGroup
	labels    []int
}

// clfGroup collects the ready windows of one distinct classifier within a
// tick. Fleets normally share one model, so the groups slice holds a single
// reused entry and the linear scan in groupFor is one pointer compare; mixed
// fleets stay a handful of entries, never a per-tick map allocation.
type clfGroup struct {
	clf  models.Classifier
	idx  []int
	wins []*tensor.Matrix
}

// reset prepares the arena for the next tick, keeping every backing array.
// pool is re-attached every tick so a hub-level pool swap (Stop/Start) takes
// effect at the next tick boundary.
func (a *tickArena) reset(pool *tensor.Pool) {
	if a.ws == nil {
		//cogarm:allow zeroalloc -- lazy arena init on the first tick; every later tick reuses it
		a.ws = tensor.NewWorkspace()
	}
	a.ws.SetPool(pool)
	a.ws.Reset()
	a.readySess = a.readySess[:0]
	a.readyWin = a.readyWin[:0]
	for i := range a.groups {
		a.groups[i].clf = nil
		a.groups[i].idx = a.groups[i].idx[:0]
		a.groups[i].wins = a.groups[i].wins[:0]
	}
	a.groups = a.groups[:0]
}

// groupFor returns the group accumulating windows for clf, reusing a
// truncated slot when one is free.
func (a *tickArena) groupFor(clf models.Classifier) *clfGroup {
	for i := range a.groups {
		if a.groups[i].clf == clf {
			return &a.groups[i]
		}
	}
	if len(a.groups) < cap(a.groups) {
		a.groups = a.groups[:len(a.groups)+1]
	} else {
		a.groups = append(a.groups, clfGroup{})
	}
	g := &a.groups[len(a.groups)-1]
	g.clf = clf
	return g
}

// closeSource releases an evicted session's source: io.Closer for network
// inlets, Stop for boards.
func closeSource(src Source) {
	switch v := src.(type) {
	case io.Closer:
		v.Close()
	case interface{ Stop() error }:
		v.Stop()
	}
}

// closeSources releases a batch of evicted sessions' sources. Closing can
// block (network inlets flush on Close), so callers must have dropped the
// shard lock first — eviction collects sources under the lock and this
// runs after it.
func closeSources(srcs []Source) {
	for _, src := range srcs {
		closeSource(src)
	}
}

func newShard(id int, cfg Config) *shard {
	return &shard{
		id:       id,
		cfg:      cfg,
		sessions: map[SessionID]*session{},
		met:      newShardMetrics(cfg.LatencyWindow),
	}
}

func (s *shard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// setPool swaps the kernel pool the tick workspace attaches to. It takes the
// shard lock, so it returns only once any in-flight tick has finished — the
// hub relies on that to close the old pool with no kernel still using it.
func (s *shard) setPool(p *tensor.Pool) {
	s.mu.Lock()
	s.pool = p
	s.mu.Unlock()
}

func (s *shard) add(sess *session) {
	s.mu.Lock()
	s.sessions[sess.id] = sess
	s.mu.Unlock()
}

// requestEvict queues a graceful removal; the session leaves at the next
// tick boundary (or immediately when no loop is running).
func (s *shard) requestEvict(id SessionID) {
	s.mu.Lock()
	s.evictq = append(s.evictq, id)
	running := s.isRunning()
	s.mu.Unlock()
	if !running {
		var toClose []Source
		s.mu.Lock()
		toClose = s.processEvictionsLocked(toClose)
		s.mu.Unlock()
		closeSources(toClose)
	}
}

func (s *shard) isRunning() bool {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	return s.running
}

// processEvictionsLocked removes queued sessions, appending their sources
// to toClose for the caller to release after dropping the lock (source
// Close can block on network teardown, which must not happen inside the
// critical section). Callers hold s.mu.
func (s *shard) processEvictionsLocked(toClose []Source) []Source {
	for _, id := range s.evictq {
		sess, ok := s.sessions[id]
		if !ok {
			continue
		}
		delete(s.sessions, id)
		toClose = append(toClose, sess.cfg.Source)
		if s.onEvict != nil {
			//cogarm:allow zeroalloc -- eviction is off the steady-state path; the hub callback only prunes its admission index
			s.onEvict(id)
		}
		s.met.evict()
		if s.tel != nil {
			s.tel.evictions.Inc()
			s.tel.sessions.Dec()
			s.tel.events.Record(obs.EvEvict, s.id, uint64(id), 0, 0)
		}
	}
	s.evictq = s.evictq[:0]
	return toClose
}

func (s *shard) sessionStats(id SessionID) (SessionStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return SessionStats{}, false
	}
	return sess.stats(), true
}

func (s *shard) closeAll() {
	var toClose []Source
	s.mu.Lock()
	for id, sess := range s.sessions {
		toClose = append(toClose, sess.cfg.Source)
		delete(s.sessions, id)
		if s.onEvict != nil {
			s.onEvict(id)
		}
		if s.tel != nil {
			s.tel.sessions.Dec()
		}
	}
	s.evictq = s.evictq[:0]
	s.mu.Unlock()
	closeSources(toClose)
}

func (s *shard) start() {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.stop = make(chan struct{})
	s.wg.Add(1)
	go s.run()
}

func (s *shard) stopLoop() {
	s.loopMu.Lock()
	if !s.running {
		s.loopMu.Unlock()
		return
	}
	s.running = false
	close(s.stop)
	s.loopMu.Unlock()
	s.wg.Wait()
}

// run paces ticks at TickHz. A tick that overruns its period simply delays
// the next one (ticker backpressure) — the p99 latency snapshot is where
// overload becomes visible.
func (s *shard) run() {
	defer s.wg.Done()
	interval := time.Duration(float64(time.Second) / s.cfg.TickHz)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.tick()
		}
	}
}

// tick advances every session one classification period: drain due samples
// into each rolling window, coalesce all ready windows into one batched
// inference per shared model, then feed labels back through each session's
// debounce. Sessions silent for MaxIdleTicks are queued for eviction.
//
// The whole loop runs out of the shard's arena: sources drain into a reused
// pop buffer, ready windows are read zero-copy from each session's Windower
// (safe because every ready window is classified before any session sees
// further pushes), and the batched classifiers draw all scratch from the
// shard workspace — at steady state a tick performs no heap allocations.
//
// With telemetry enabled (tel != nil) the tick additionally records a
// per-stage wall-time breakdown — drain (source reads), window (filter +
// normalise + push), infer (batched classification), decide (debounce +
// counters) — into process-global lock-free histograms. The stage clocks
// are monotonic time.Now reads accumulated into locals and observed once
// per tick, so the instrumented tick stays zero-allocation; the whole
// telemetry block is skipped when disabled so benchmarks can measure the
// bare loop.
//
//cogarm:zeroalloc
func (s *shard) tick() {
	tel := s.tel
	var drainNs, windowNs, inferNs, decideNs int64
	var stamp time.Time
	var toClose []Source
	start := time.Now()
	s.mu.Lock()
	toClose = s.processEvictionsLocked(toClose)
	s.arena.reset(s.pool)
	ar := &s.arena

	// Ingest phase: windows become ready independently per session.
	var samplesIn uint64
	for id, sess := range s.sessions {
		n := sess.due(s.cfg.TickHz)
		if tel != nil {
			stamp = time.Now()
		}
		var samples []stream.Sample
		if ri, ok := sess.cfg.Source.(ReaderInto); ok {
			ar.popBuf = ri.ReadInto(ar.popBuf[:0], n)
			samples = ar.popBuf
		} else {
			//cogarm:allow zeroalloc -- compat path for sources without ReadInto; in-tree sources all implement it
			samples = sess.cfg.Source.Read(n)
		}
		if tel != nil {
			now := time.Now()
			drainNs += now.Sub(stamp).Nanoseconds()
			stamp = now
		}
		if len(samples) == 0 {
			sess.idleTicks++
			// Idle eviction only applies to sessions that have streamed
			// before: a session admitted ahead of its client connecting
			// (cogarmd -listen) waits indefinitely.
			if sess.fed && s.cfg.MaxIdleTicks > 0 && sess.idleTicks >= s.cfg.MaxIdleTicks {
				s.evictq = append(s.evictq, id)
			}
			continue
		}
		sess.fed = true
		sess.idleTicks = 0
		sess.ver++ // signal-path state advances: session is checkpoint-dirty
		samplesIn += uint64(len(samples))
		for _, smp := range samples {
			sess.win.Push(smp.Values)
		}
		if sess.win.Ready() {
			ar.readySess = append(ar.readySess, sess)
			ar.readyWin = append(ar.readyWin, sess.win.Window())
		}
		if tel != nil {
			windowNs += time.Since(stamp).Nanoseconds()
		}
	}

	// Batch phase: one PredictBatch per distinct model. Fleets normally
	// share one classifier, so this is a single call for the whole shard;
	// mixed fleets degrade to one call per model, never one per session.
	// Both classifier kinds exploit the coalesced batch: the forest walks
	// it tree-major (rf.Forest.PredictBatch) and NN families fuse it into
	// batch×feature GEMMs (nn.Network.ForwardBatch), so per-inference cost
	// falls as fleet density rises.
	if len(ar.readySess) > 0 {
		for i, sess := range ar.readySess {
			g := ar.groupFor(sess.clf)
			g.idx = append(g.idx, i)
			g.wins = append(g.wins, ar.readyWin[i])
		}
		for gi := range ar.groups {
			g := &ar.groups[gi]
			if tel != nil {
				stamp = time.Now()
			}
			ar.labels = models.PredictBatchWS(g.clf, ar.ws, g.wins, ar.labels[:0])
			if tel != nil {
				now := time.Now()
				inferNs += now.Sub(stamp).Nanoseconds()
				stamp = now
			}
			for j, i := range g.idx {
				ar.readySess[i].observe(eeg.Action(ar.labels[j]))
			}
			s.met.batch(len(g.wins))
			if tel != nil {
				decideNs += time.Since(stamp).Nanoseconds()
				tel.batches.Inc()
				tel.inferences.Add(uint64(len(g.wins)))
				tel.batchSize.Observe(float64(len(g.wins)))
			}
		}
	}
	toClose = s.processEvictionsLocked(toClose)
	s.mu.Unlock()
	//cogarm:allow zeroalloc -- eviction teardown is off the steady-state path and runs off the lock
	closeSources(toClose)

	s.met.tick(time.Since(start).Seconds(), samplesIn)
	if tel != nil {
		tel.ticks.Inc()
		tel.samples.Add(samplesIn)
		tel.tick.ObserveDuration(time.Since(start).Nanoseconds())
		tel.stageDrain.ObserveDuration(drainNs)
		tel.stageWindow.ObserveDuration(windowNs)
		tel.stageInfer.ObserveDuration(inferNs)
		tel.stageDecide.ObserveDuration(decideNs)
	}
}

// snapshot reports the shard's counters and appends its sorted recent tick
// latencies to pool (see shardMetrics.snapshot).
func (s *shard) snapshot(pool []float64) (ShardSnapshot, []float64) {
	snap, pool := s.met.snapshot(pool)
	snap.Shard = s.id
	snap.Sessions = s.len()
	return snap, pool
}
