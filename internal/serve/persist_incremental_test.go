package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cognitivearm/internal/checkpoint"
	"cognitivearm/internal/stream"
)

// gatedSource stays silent for the first `silent` reads, then replays its
// script — a subject who connects but only starts streaming later, the shape
// that makes idle sessions checkpoint-clean while their scheduler fields
// keep drifting.
type gatedSource struct {
	silent  int
	reads   int
	samples []stream.Sample
	pos     int
}

func (g *gatedSource) Read(max int) []stream.Sample {
	g.reads++
	if g.reads <= g.silent {
		return nil
	}
	n := len(g.samples) - g.pos
	if max > 0 && max < n {
		n = max
	}
	out := g.samples[g.pos : g.pos+n : g.pos+n]
	g.pos += n
	return out
}

func ckptDirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		info, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

func readManifestDir(t *testing.T, dir string) *checkpoint.Manifest {
	t.Helper()
	state, err := checkpoint.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	return &state.Manifest
}

// TestIncrementalCheckpointWritesDirtyOnly is the acceptance gate for
// dirty-only checkpoints at fleet scale: a 100-session fleet in which only
// 10 sessions receive data between two checkpoints must write an incremental
// directory of at most ~15% of the full checkpoint's bytes, containing
// exactly the 10 dirty records and no model payload, while the manifest
// still references all 100 sessions.
func TestIncrementalCheckpointWritesDirtyOnly(t *testing.T) {
	reg, p := testFleet(t)
	const fleet, active = 100, 10
	hub, err := NewHub(Config{Shards: 4, MaxSessionsPerShard: 25, TickHz: 15, LatencyWindow: 32}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	// Every session streams long enough to fill its rolling window with real
	// signal (so every full record carries its ~window-size payload), but
	// only the first `active` still have samples left after the warmup —
	// the other 90 run dry and stop mutating.
	for i := 0; i < fleet; i++ {
		n := 160 // < 20 ticks' worth: dry before the first checkpoint
		if i < active {
			n = 400
		}
		src := &scriptSource{samples: scriptedEEG(0, uint64(100+i), n)}
		if _, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: src, Norm: p.NormFor(0)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		hub.TickAll()
	}
	root := t.TempDir()
	fullDir, err := hub.Checkpoint(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		hub.TickAll()
	}
	incDir, err := hub.Checkpoint(root)
	if err != nil {
		t.Fatal(err)
	}

	fullMan, incMan := readManifestDir(t, fullDir), readManifestDir(t, incDir)
	if fullMan.Sessions != fleet || len(fullMan.Refs) != fleet {
		t.Fatalf("full checkpoint: %d records / %d refs, want %d / %d", fullMan.Sessions, len(fullMan.Refs), fleet, fleet)
	}
	if incMan.Sessions != active {
		t.Fatalf("incremental checkpoint wrote %d records, want exactly the %d dirty sessions", incMan.Sessions, active)
	}
	if len(incMan.Refs) != fleet {
		t.Fatalf("incremental manifest references %d sessions, want the whole fleet (%d)", len(incMan.Refs), fleet)
	}
	if incMan.Base != fullMan.Seq || incMan.Increments != 1 {
		t.Fatalf("incremental chain bookkeeping: base %d increments %d, want base %d increments 1", incMan.Base, incMan.Increments, fullMan.Seq)
	}
	if _, err := os.Stat(filepath.Join(incDir, "model-0.bin")); !os.IsNotExist(err) {
		t.Fatal("incremental checkpoint rewrote the (immutable) model payload")
	}
	fullBytes, incBytes := ckptDirBytes(t, fullDir), ckptDirBytes(t, incDir)
	if float64(incBytes) > 0.15*float64(fullBytes) {
		t.Fatalf("incremental checkpoint wrote %d bytes = %.1f%% of the %d-byte full checkpoint, want <= 15%%",
			incBytes, 100*float64(incBytes)/float64(fullBytes), fullBytes)
	}
	t.Logf("full checkpoint %d bytes, incremental %d bytes (%.1f%%)",
		fullBytes, incBytes, 100*float64(incBytes)/float64(fullBytes))
}

// TestIncrementalRestoreBitwiseIdentical kills a fleet after several
// incremental checkpoints — with one session active throughout, one idle
// until after the last checkpoint (its record referenced, its scheduler
// fields only in the manifest), and one mid-chain — restores from the
// incremental chain, and demands the exact per-tick decode sequence of an
// uninterrupted reference hub. It then pushes the chain past the compaction
// bound and verifies the restore stays exact across the full-rewrite
// boundary.
func TestIncrementalRestoreBitwiseIdentical(t *testing.T) {
	reg, p := testFleet(t)
	const (
		totalTicks = 90
		totalSamp  = 900
	)
	cfg := Config{Shards: 2, MaxSessionsPerShard: 3, TickHz: 15, LatencyWindow: 32}
	streams := [][]stream.Sample{
		scriptedEEG(0, 11, totalSamp),
		scriptedEEG(0, 23, totalSamp),
		scriptedEEG(0, 37, totalSamp),
	}
	// silent phases: always-on, wakes mid-run, wakes only after the kill.
	silences := []int{0, 30, 60}

	build := func() (*Hub, []SessionID, []*gatedSource) {
		hub, err := NewHub(cfg, reg)
		if err != nil {
			t.Fatal(err)
		}
		var ids []SessionID
		var srcs []*gatedSource
		for i, s := range streams {
			src := &gatedSource{silent: silences[i], samples: s}
			id, err := hub.Admit(SessionConfig{ModelKey: "rf", Source: src, Norm: p.NormFor(0), Tag: "g"})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			srcs = append(srcs, src)
		}
		return hub, ids, srcs
	}

	// Reference: uninterrupted.
	ref, refIDs, _ := build()
	defer ref.Stop()
	var want []SessionStats
	for i := 0; i < totalTicks; i++ {
		want = append(want, tickStats(t, ref, refIDs)...)
	}

	for _, killTick := range []int{41, 83} { // mid-chain, and past a compaction
		root := t.TempDir()
		victim, ids, srcs := build()
		var got []SessionStats
		ckpts := 0
		for i := 0; i < killTick; i++ {
			got = append(got, tickStats(t, victim, ids)...)
			if i%7 == 6 { // checkpoint every 7 ticks: builds an incremental chain
				if _, err := victim.Checkpoint(root); err != nil {
					t.Fatal(err)
				}
				ckpts++
			}
		}
		if _, err := victim.Checkpoint(root); err != nil { // final pre-kill checkpoint
			t.Fatal(err)
		}
		ckpts++
		if killTick == 83 && ckpts <= checkpoint.DefaultCompactEvery {
			t.Fatalf("test meant to cross the compaction bound wrote only %d checkpoints", ckpts)
		}
		consumed := make([]int, len(srcs))
		reads := make([]int, len(srcs))
		for i, s := range srcs {
			consumed[i], reads[i] = s.pos, s.reads
		}
		victim.Stop()

		restored, _, err := RestoreHubDir(root, func(rec RestoredSession) (Source, error) {
			// Each session resumes its stream exactly where the dead hub
			// stopped reading, with the silence countdown also resumed.
			idx := -1
			for i, id := range ids {
				if id == SessionID(rec.ID) {
					idx = i
				}
			}
			if idx < 0 {
				t.Fatalf("restore offered unknown session %d", rec.ID)
			}
			remaining := silences[idx] - reads[idx]
			if remaining < 0 {
				remaining = 0
			}
			return &gatedSource{silent: remaining, samples: streams[idx][consumed[idx]:]}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := killTick; i < totalTicks; i++ {
			got = append(got, tickStats(t, restored, ids)...)
		}
		restored.Stop()
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("killTick %d: tick-stat %d diverged after incremental restore:\n got %+v\nwant %+v",
						killTick, i, got[i], want[i])
				}
			}
			t.Fatalf("killTick %d: decode sequence diverged after incremental restore", killTick)
		}
	}
}

// TestCompactionBoundsChain: checkpointing more than DefaultCompactEvery
// times must reset the chain with a full rewrite, and the chain length in
// the manifest must never reach the bound.
func TestCompactionBoundsChain(t *testing.T) {
	reg, p := testFleet(t)
	hub, err := NewHub(Config{Shards: 1, MaxSessionsPerShard: 2, TickHz: 15, LatencyWindow: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	if _, err := hub.Admit(SessionConfig{
		ModelKey: "rf", Source: &scriptSource{samples: scriptedEEG(0, 5, 4000)}, Norm: p.NormFor(0),
	}); err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	sawFullAgain := false
	for i := 0; i < checkpoint.DefaultCompactEvery+3; i++ {
		hub.TickAll()
		dir, err := hub.Checkpoint(root)
		if err != nil {
			t.Fatal(err)
		}
		man := readManifestDir(t, dir)
		if man.Increments >= checkpoint.DefaultCompactEvery {
			t.Fatalf("checkpoint %d: chain length %d reached the compaction bound %d", i, man.Increments, checkpoint.DefaultCompactEvery)
		}
		if i > 0 && man.Increments == 0 {
			sawFullAgain = true
			if man.Base != 0 {
				t.Fatalf("full rewrite still records base %d", man.Base)
			}
		}
	}
	if !sawFullAgain {
		t.Fatal("no compaction (full rewrite) happened within DefaultCompactEvery+3 checkpoints")
	}
}
