package serve

import (
	"fmt"
	"io"
	"sort"

	"cognitivearm/internal/checkpoint"
	"cognitivearm/internal/control"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/models"
	"cognitivearm/internal/stream"
)

// Fleet checkpointing: Hub.Checkpoint snapshots the entire hub — registry
// models, every session's signal-path state, shard assignment and metrics
// baselines — into a checkpoint directory via internal/checkpoint, and
// RestoreHub rebuilds a serving hub from one. The capture is copy-on-
// snapshot: each shard's lock is held only long enough to deep-copy its
// sessions' in-memory state (microseconds per shard, one shard at a time),
// and all serialization and disk I/O happen afterwards on the caller's
// goroutine, so paced tick loops never stall behind a checkpoint.

// Checkpoint atomically persists the hub's serving state as the next
// checkpoint under root, returning the new checkpoint directory. It is
// safe to call while the hub is serving (Start) or between TickAll calls; a
// session's tick and its capture are serialized by the shard lock, so every
// persisted session is at a tick boundary.
//
// Checkpoints are incremental by default: the previous checkpoint's manifest
// is consulted, and only sessions whose signal path advanced since (and
// models not yet on disk) are captured and written — unchanged sessions cost
// one ~40-byte manifest reference, so checkpoint cost scales with churn, not
// fleet size. Every checkpoint.DefaultCompactEvery increments (and whenever
// no usable previous manifest exists) a full rewrite compacts the chain.
// Incremental and full checkpoints restore bitwise-identically.
//
// Concurrent Checkpoint calls on one hub are serialized: Save ends with a
// retention prune, and a prune racing another in-flight save can delete a
// directory whose payloads the new incremental manifest still references.
// The lock covers manifest read through prune, so each save sees — and
// protects — its predecessor.
func (h *Hub) Checkpoint(root string) (string, error) {
	h.ckptMu.Lock()
	defer h.ckptMu.Unlock()
	//cogarm:allow nolockblock -- ckptMu exists to serialize checkpoint I/O; no tick-path code takes it
	prev, err := checkpoint.LatestManifest(root)
	if err != nil {
		prev = nil // no (readable) previous checkpoint: write a full one
	}
	//cogarm:allow nolockblock -- ckptMu exists to serialize checkpoint I/O; no tick-path code takes it
	return checkpoint.Save(root, h.captureState(prev))
}

// CheckpointWithWal is Checkpoint with the manifest fenced against a
// write-ahead log: walSeq — the WAL's last sealed entry sequence as of this
// capture — rides into Manifest.WalSeq, so a later recovery replays only the
// WAL entries this checkpoint does not already contain. The serve Journal is
// the intended caller; it flushes (seals) before capturing, keeping the fence
// conservative: state journaled after walSeq is at least as new in the WAL
// as in this checkpoint, and replay's latest-record fold makes reapplying it
// harmless.
func (h *Hub) CheckpointWithWal(root string, walSeq uint64) (string, error) {
	h.ckptMu.Lock()
	defer h.ckptMu.Unlock()
	//cogarm:allow nolockblock -- ckptMu exists to serialize checkpoint I/O; no tick-path code takes it
	prev, err := checkpoint.LatestManifest(root)
	if err != nil {
		prev = nil // no (readable) previous checkpoint: write a full one
	}
	state := h.captureState(prev)
	state.Manifest.WalSeq = walSeq
	//cogarm:allow nolockblock -- ckptMu exists to serialize checkpoint I/O; no tick-path code takes it
	return checkpoint.Save(root, state)
}

// CaptureState snapshots the hub's complete state into a self-contained
// checkpoint.FleetState without touching disk — the in-memory half of a full
// Checkpoint, exposed for tests and for callers that ship state elsewhere
// (streamed migration, a replication stream).
func (h *Hub) CaptureState() *checkpoint.FleetState {
	return h.captureState(nil)
}

// captureState snapshots the hub. With a nil prev manifest the capture is
// full and self-contained; otherwise sessions and models unchanged since
// prev become references into the directories that already hold them, and
// only dirty state is deep-copied under the shard locks.
func (h *Hub) captureState(prev *checkpoint.Manifest) *checkpoint.FleetState {
	if prev != nil && (prev.Format < checkpoint.DirFormatV2 || prev.Increments+1 >= checkpoint.DefaultCompactEvery) {
		prev = nil // pre-v2 base or chain at its bound: compact with a full rewrite
	}
	h.mu.Lock()
	state := &checkpoint.FleetState{
		Manifest: checkpoint.Manifest{
			Hub: checkpoint.HubConfig{
				Shards:              h.cfg.Shards,
				MaxSessionsPerShard: h.cfg.MaxSessionsPerShard,
				TickHz:              h.cfg.TickHz,
				MaxIdleTicks:        h.cfg.MaxIdleTicks,
				LatencyWindow:       h.cfg.LatencyWindow,
			},
			NextID: uint64(h.nextID),
			Format: checkpoint.DirFormatV2,
		},
	}
	shards := h.shards
	h.mu.Unlock()

	var prevRefs map[uint64]checkpoint.SessionRef
	if prev != nil {
		state.Manifest.Base = prev.Seq
		state.Manifest.Increments = prev.Increments + 1
		prevRefs = prev.RefIndex()
	}
	for _, s := range shards {
		state.Manifest.Shards = append(state.Manifest.Shards, s.captureCounters())
		recs, refs := s.captureSessions(prevRefs)
		state.Sessions = append(state.Sessions, recs...)
		state.Manifest.Refs = append(state.Manifest.Refs, refs...)
	}
	// Resolve models after the session sweep: Admit only places a session
	// once its model has resolved in the registry, so every model a captured
	// session references is guaranteed present here — the reverse order
	// would let a concurrently admitted session reference a model missing
	// from the snapshot, producing a checkpoint Load rejects whole.
	clfs, macs := h.reg.Resolved()
	if prev == nil {
		state.Models, state.ModelMACs = clfs, macs
		return state
	}
	// Registry models are immutable once resolved (train/deserialize-once),
	// so any key the previous checkpoint indexed is referenced, not
	// rewritten; only newly resolved models cost bytes.
	prevModels := prev.ModelIndex()
	state.Models = make(map[string]models.Classifier)
	state.ModelMACs = make(map[string]int64)
	for key, clf := range clfs {
		if e, ok := prevModels[key]; ok {
			state.ModelRefs = append(state.ModelRefs, checkpoint.ModelEntry{
				Key: key, File: e.File, MACs: macs[key], Seq: e.Seq,
			})
			continue
		}
		state.Models[key] = clf
		state.ModelMACs[key] = macs[key]
	}
	sort.Slice(state.ModelRefs, func(i, j int) bool { return state.ModelRefs[i].Key < state.ModelRefs[j].Key })
	return state
}

// CaptureDelta snapshots the hub's dirty state since prev — the same
// dirty-record sweep an incremental checkpoint performs, aimed at a
// replication tail instead of a directory. The returned state carries full
// records only for sessions whose signal path advanced since prev (or that
// prev does not know), the complete live view in Manifest.Refs (so the
// receiver prunes departures and overlays the volatile scheduler fields),
// and every resolved model in Models — checkpoint.TailWriter deduplicates
// models per connection, so resending the map costs nothing after the first
// batch. A nil prev marks everything dirty: the full-resync first batch of a
// fresh replication connection.
//
// Shard counter baselines deliberately stay home, exactly as in migration:
// a promoted replica is a new serving fleet, not a metrics continuation.
func (h *Hub) CaptureDelta(prev map[uint64]checkpoint.SessionRef) *checkpoint.FleetState {
	h.mu.Lock()
	state := &checkpoint.FleetState{
		Manifest: checkpoint.Manifest{
			Hub: checkpoint.HubConfig{
				Shards:              h.cfg.Shards,
				MaxSessionsPerShard: h.cfg.MaxSessionsPerShard,
				TickHz:              h.cfg.TickHz,
				MaxIdleTicks:        h.cfg.MaxIdleTicks,
				LatencyWindow:       h.cfg.LatencyWindow,
			},
			NextID: uint64(h.nextID),
		},
	}
	shards := h.shards
	h.mu.Unlock()
	for _, s := range shards {
		recs, refs := s.captureSessions(prev)
		state.Sessions = append(state.Sessions, recs...)
		state.Manifest.Refs = append(state.Manifest.Refs, refs...)
	}
	state.Models, state.ModelMACs = h.reg.Resolved()
	return state
}

// captureSessions sweeps the shard under its lock (the brief pause a running
// tick loop sees), returning full records for dirty sessions — ver moved
// since prevRefs, pending samples buffered, or no previous record at all —
// and manifest references for clean ones. Both slices come back sorted by
// session ID for deterministic checkpoint bytes. A nil prevRefs marks every
// session dirty (full capture).
func (s *shard) captureSessions(prevRefs map[uint64]checkpoint.SessionRef) ([]checkpoint.SessionRecord, []checkpoint.SessionRef) {
	s.mu.Lock()
	recs := make([]checkpoint.SessionRecord, 0, len(s.sessions))
	refs := make([]checkpoint.SessionRef, 0, len(s.sessions))
	for _, sess := range s.sessions {
		ref := checkpoint.SessionRef{
			ID:        uint64(sess.id),
			Ver:       sess.ver,
			SampleAcc: sess.sampleAcc,
			IdleTicks: sess.idleTicks,
		}
		if pr, ok := prevRefs[ref.ID]; ok && pr.Ver == sess.ver && sessionPending(sess) == 0 {
			// Clean: the record written at pr.Seq is bitwise this session's
			// heavy state (same ver ⇒ no ingest ⇒ window/filters/debounce/
			// counters unchanged and no pending was drained); only the
			// volatile scheduler fields moved, and those ride in the ref.
			ref.Seq = pr.Seq
			refs = append(refs, ref)
			continue
		}
		recs = append(recs, captureSessionLocked(s.id, sess))
		refs = append(refs, ref) // Seq 0: record written by this checkpoint
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	sort.Slice(refs, func(i, j int) bool { return refs[i].ID < refs[j].ID })
	return recs, refs
}

// sessionPending cheaply counts samples buffered in the session's source
// without copying them. Callers hold the owning shard's lock.
func sessionPending(sess *session) int {
	if pl, ok := sess.cfg.Source.(interface{ PendingLen() int }); ok {
		return pl.PendingLen()
	}
	if snap, ok := sess.cfg.Source.(PendingSnapshotter); ok {
		return len(snap.SnapshotPending())
	}
	return 0
}

// captureSessionLocked deep-copies one session's complete resumable state.
// Callers hold the owning shard's lock.
func captureSessionLocked(shardID int, sess *session) checkpoint.SessionRecord {
	rec := checkpoint.SessionRecord{
		ID:           uint64(sess.id),
		Shard:        shardID,
		Ver:          sess.ver,
		ModelKey:     sess.cfg.ModelKey,
		Tag:          sess.cfg.Tag,
		Channels:     sess.cfg.Channels,
		SampleRateHz: sess.cfg.SampleRateHz,
		NormMean:     append([]float64(nil), sess.cfg.Norm.Mean...),
		NormStd:      append([]float64(nil), sess.cfg.Norm.Std...),
		SampleAcc:    sess.sampleAcc,
		Fed:          sess.fed,
		IdleTicks:    sess.idleTicks,
		Decoded:      sess.decoded,
		Agreed:       sess.agreed,
		Actions:      append([]uint64(nil), sess.actions[:]...),
		Windower:     sess.win.State(),
		Debounce:     sess.debounce.State(),
	}
	if snap, ok := sess.cfg.Source.(PendingSnapshotter); ok {
		for _, smp := range snap.SnapshotPending() {
			rec.Pending = append(rec.Pending, checkpoint.PendingSample{
				Seq: smp.Seq, Timestamp: smp.Timestamp, Values: smp.Values,
			})
		}
	}
	return rec
}

// captureCounters snapshots the shard's monotonic metric counters.
func (s *shard) captureCounters() checkpoint.ShardCounters {
	m := &s.met
	m.mu.Lock()
	defer m.mu.Unlock()
	return checkpoint.ShardCounters{
		Ticks:      m.ticks,
		Inferences: m.inferences,
		Batches:    m.batches,
		Evictions:  m.evictions,
		SamplesIn:  m.samplesIn,
	}
}

// restoreCounters reinstates a persisted counter baseline, so fleet
// throughput totals survive a daemon restart.
func (m *shardMetrics) restoreCounters(c checkpoint.ShardCounters) {
	m.mu.Lock()
	m.ticks = c.Ticks
	m.inferences = c.Inferences
	m.batches = c.Batches
	m.evictions = c.Evictions
	m.samplesIn = c.SamplesIn
	m.mu.Unlock()
}

// RestoredSession is the view of a persisted session handed to a
// SourceFactory so the caller can rebind a live sample source.
type RestoredSession struct {
	ID           SessionID
	ModelKey     string
	Tag          string
	Channels     int
	SampleRateHz float64
}

// SourceFactory rebinds a live Source for one restored session. Returning
// (nil, nil) drops the session — the rebind target no longer exists (e.g. an
// external client that will simply reconnect and be re-admitted). Returning
// an error aborts the whole restore.
type SourceFactory func(RestoredSession) (Source, error)

// RestoreHub rebuilds a serving hub from a loaded checkpoint: the registry
// is populated with the deserialised models (no retraining), every session
// returns to its original shard with its rolling window, filter delay state,
// debounce ring and counters intact, and samples that sat unconsumed in
// source buffers at snapshot time are prepended to the new source — so the
// restored fleet's label stream continues bitwise-identically to the one the
// killed fleet would have produced for the same subsequent input.
//
// The hub is returned stopped; call Start (or TickAll) to resume serving.
func RestoreHub(state *checkpoint.FleetState, newSource SourceFactory) (*Hub, error) {
	if state == nil {
		return nil, fmt.Errorf("serve: restore: nil state")
	}
	if newSource == nil {
		return nil, fmt.Errorf("serve: restore: nil source factory")
	}
	man := &state.Manifest
	reg := NewRegistry()
	for key, clf := range state.Models {
		clf, macs := clf, state.ModelMACs[key]
		reg.GetOrBuild(key, func() (models.Classifier, int64, error) { return clf, macs, nil })
	}
	hub, err := NewHub(Config{
		Shards:              man.Hub.Shards,
		MaxSessionsPerShard: man.Hub.MaxSessionsPerShard,
		TickHz:              man.Hub.TickHz,
		MaxIdleTicks:        man.Hub.MaxIdleTicks,
		LatencyWindow:       man.Hub.LatencyWindow,
	}, reg)
	if err != nil {
		return nil, fmt.Errorf("serve: restore: %w", err)
	}
	for i, s := range hub.shards {
		if i < len(man.Shards) {
			s.met.restoreCounters(man.Shards[i])
		}
	}
	// fail aborts a partial restore: Stop on the unstarted hub closes the
	// sources of every session already rebound, so an error on session N
	// cannot leak N-1 open sockets (and their streamer goroutines).
	fail := func(err error) (*Hub, error) {
		hub.Stop()
		return nil, err
	}

	maxID := SessionID(man.NextID)
	for i := range state.Sessions {
		rec := &state.Sessions[i]
		if rec.Shard < 0 || rec.Shard >= len(hub.shards) {
			return fail(fmt.Errorf("serve: restore: session %d assigned to shard %d of %d", rec.ID, rec.Shard, len(hub.shards)))
		}
		clf, _, ok := reg.Get(rec.ModelKey)
		if !ok {
			return fail(fmt.Errorf("serve: restore: session %d references model %q not in checkpoint", rec.ID, rec.ModelKey))
		}
		src, err := newSource(RestoredSession{
			ID:           SessionID(rec.ID),
			ModelKey:     rec.ModelKey,
			Tag:          rec.Tag,
			Channels:     rec.Channels,
			SampleRateHz: rec.SampleRateHz,
		})
		if err != nil {
			return fail(fmt.Errorf("serve: restore: session %d source: %w", rec.ID, err))
		}
		if src == nil {
			continue // caller dropped the session
		}
		sess, err := sessionFromRecord(rec, clf, src)
		if err != nil {
			return fail(err)
		}
		sess.id = SessionID(rec.ID)
		target := hub.shards[rec.Shard]
		target.add(sess)
		hub.idxMu.Lock()
		hub.index[sess.id] = target
		hub.idxMu.Unlock()
		if sess.id > maxID {
			maxID = sess.id
		}
	}
	hub.mu.Lock()
	hub.nextID = maxID
	hub.mu.Unlock()
	return hub, nil
}

// sessionFromRecord rebuilds one session from its checkpoint record around a
// live source: pending samples are prepended, the rolling window and filter
// delay state are reinstated, and the debounce ring and counters resume. The
// session's ID is left unset — RestoreHub reinstates the persisted ID, while
// RestoreSession (migration-in) assigns a fresh local one. On error the
// source is closed.
func sessionFromRecord(rec *checkpoint.SessionRecord, clf models.Classifier, src Source) (*session, error) {
	if len(rec.Pending) > 0 {
		pending := make([]stream.Sample, len(rec.Pending))
		for j, smp := range rec.Pending {
			pending[j] = stream.Sample{Seq: smp.Seq, Timestamp: smp.Timestamp, Values: smp.Values}
		}
		src = &pendingSource{pending: pending, src: src}
	}
	norm := dataset.Stats{Mean: rec.NormMean, Std: rec.NormStd}
	win, err := control.NewWindower(rec.SampleRateHz, rec.Channels, clf.WindowSize(), norm)
	if err != nil {
		closeSource(src)
		return nil, fmt.Errorf("serve: restore: session %d: %w", rec.ID, err)
	}
	if err := win.SetState(rec.Windower); err != nil {
		closeSource(src)
		return nil, fmt.Errorf("serve: restore: session %d: %w", rec.ID, err)
	}
	sess := &session{
		cfg: SessionConfig{
			ModelKey:     rec.ModelKey,
			Source:       src,
			Norm:         norm,
			Channels:     rec.Channels,
			SampleRateHz: rec.SampleRateHz,
			Tag:          rec.Tag,
		},
		clf:       clf,
		win:       win,
		ver:       rec.Ver,
		sampleAcc: rec.SampleAcc,
		fed:       rec.Fed,
		idleTicks: rec.IdleTicks,
		decoded:   rec.Decoded,
		agreed:    rec.Agreed,
	}
	if err := sess.debounce.SetState(rec.Debounce); err != nil {
		closeSource(src)
		return nil, fmt.Errorf("serve: restore: session %d: %w", rec.ID, err)
	}
	for i := 0; i < len(sess.actions) && i < len(rec.Actions); i++ {
		sess.actions[i] = rec.Actions[i]
	}
	return sess, nil
}

// ExtractSession atomically captures one session's complete resumable state
// and removes it from the hub — the sending half of live migration. Capture
// and removal happen under the shard lock, so no tick can advance the session
// between the snapshot and its departure; samples still buffered in the
// source ride along in the record's Pending list, and the source is closed
// after capture. The returned record is exactly what Hub.RestoreSession on
// another node (fed the same subsequent input) resumes bitwise-identically.
func (h *Hub) ExtractSession(id SessionID) (*checkpoint.SessionRecord, bool) {
	h.idxMu.Lock()
	s, ok := h.index[id]
	h.idxMu.Unlock()
	if !ok {
		return nil, false
	}
	return s.extractSession(id)
}

// extractSession captures-and-removes one session under the shard lock.
func (s *shard) extractSession(id SessionID) (*checkpoint.SessionRecord, bool) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	rec := captureSessionLocked(s.id, sess)
	delete(s.sessions, id)
	if s.onEvict != nil {
		s.onEvict(id)
	}
	if s.tel != nil {
		s.tel.sessions.Dec()
	}
	s.mu.Unlock()
	// Source teardown can block on network close; do it off the lock.
	closeSource(sess.cfg.Source)
	return &rec, true
}

// RestoreSession admits a migrated-in session from its streamed checkpoint
// record: every piece of signal-path state resumes exactly (rolling window,
// IIR delay state, debounce ring, counters, pending samples), but the hub
// assigns a fresh local ID and places the session with its own Placement
// policy — session IDs and shard assignment are node-local bookkeeping, not
// migrated identity. The record's ModelKey must already resolve in this hub's
// registry (the cluster layer registers streamed models first).
func (h *Hub) RestoreSession(rec *checkpoint.SessionRecord, src Source) (SessionID, error) {
	if src == nil {
		return 0, fmt.Errorf("serve: restore session %d: nil source", rec.ID)
	}
	clf, _, ok := h.reg.Get(rec.ModelKey)
	if !ok {
		closeSource(src)
		return 0, fmt.Errorf("serve: restore session %d: model %q not in registry", rec.ID, rec.ModelKey)
	}
	sess, err := sessionFromRecord(rec, clf, src)
	if err != nil {
		return 0, err
	}
	id, err := h.admitSession(sess)
	if err != nil {
		closeSource(sess.cfg.Source)
		return 0, err
	}
	return id, nil
}

// PromoteSession admits a replica session during failover. It is
// RestoreSession with the placement policy's latency backpressure disabled:
// a promotion refused for a transiently hot p99 would lose the session
// outright, which is strictly worse than serving it on a busy shard — so
// only the hard per-shard capacity bound can refuse a promotion. Everything
// else matches migration-in exactly: fresh local ID, local placement,
// bitwise signal-path resume from the record.
func (h *Hub) PromoteSession(rec *checkpoint.SessionRecord, src Source) (SessionID, error) {
	if src == nil {
		return 0, fmt.Errorf("serve: promote session %d: nil source", rec.ID)
	}
	clf, _, ok := h.reg.Get(rec.ModelKey)
	if !ok {
		closeSource(src)
		return 0, fmt.Errorf("serve: promote session %d: model %q not in registry", rec.ID, rec.ModelKey)
	}
	sess, err := sessionFromRecord(rec, clf, src)
	if err != nil {
		return 0, err
	}
	id, err := h.admitSessionWith(sess, LeastLoaded{MaxP99Frac: -1})
	if err != nil {
		closeSource(sess.cfg.Source)
		return 0, err
	}
	return id, nil
}

// RestoreHubDir loads the newest valid checkpoint under root and restores a
// hub from it — the one-call resume path for daemons. It returns
// checkpoint.ErrNoCheckpoint (wrapped) when root holds no checkpoint yet.
func RestoreHubDir(root string, newSource SourceFactory) (*Hub, string, error) {
	state, dir, err := checkpoint.LoadLatest(root)
	if err != nil {
		return nil, "", err
	}
	hub, err := RestoreHub(state, newSource)
	if err != nil {
		return nil, "", err
	}
	return hub, dir, nil
}

// pendingSource replays samples that were buffered but unconsumed at
// checkpoint time before handing reads through to the rebound live source.
// It preserves ordering: every pending sample drains before the first live
// one, exactly as the ring would have delivered them.
type pendingSource struct {
	pending []stream.Sample
	src     Source
}

// Read implements Source, preserving the Source contract exactly: max <= 0
// drains pending AND the live source (as Ring.PopN would), a positive max is
// split between the two. Any deviation here would group samples into
// different ticks than the pre-kill fleet and break bitwise-identical resume.
func (p *pendingSource) Read(max int) []stream.Sample {
	if len(p.pending) == 0 {
		return p.src.Read(max)
	}
	n := len(p.pending)
	if max > 0 && max < n {
		n = max
	}
	out := p.pending[:n:n]
	p.pending = p.pending[n:]
	if max > 0 && n == max {
		return out
	}
	// max-n is negative when max <= 0: the drain-everything case passes
	// through to the live source unchanged.
	return append(out, p.src.Read(max-n)...)
}

// ReadInto implements ReaderInto so a restored session re-enters the
// allocation-free tick path immediately, replaying pending samples with the
// same split semantics as Read.
func (p *pendingSource) ReadInto(dst []stream.Sample, max int) []stream.Sample {
	if len(p.pending) > 0 {
		n := len(p.pending)
		if max > 0 && max < n {
			n = max
		}
		dst = append(dst, p.pending[:n]...)
		p.pending = p.pending[n:]
		if max > 0 && n == max {
			return dst
		}
		max -= n // negative when max <= 0: still the drain-everything case
	}
	if ri, ok := p.src.(ReaderInto); ok {
		return ri.ReadInto(dst, max)
	}
	return append(dst, p.src.Read(max)...)
}

// PendingLen counts replay samples plus whatever the wrapped source buffers,
// without copying either.
func (p *pendingSource) PendingLen() int {
	n := len(p.pending)
	if pl, ok := p.src.(interface{ PendingLen() int }); ok {
		n += pl.PendingLen()
	} else if snap, ok := p.src.(PendingSnapshotter); ok {
		n += len(snap.SnapshotPending())
	}
	return n
}

// SnapshotPending implements PendingSnapshotter, so re-checkpointing before
// the replay drains still captures every in-flight sample.
func (p *pendingSource) SnapshotPending() []stream.Sample {
	out := make([]stream.Sample, 0, len(p.pending))
	for _, s := range p.pending {
		s.Values = append([]float64(nil), s.Values...)
		out = append(out, s)
	}
	if snap, ok := p.src.(PendingSnapshotter); ok {
		out = append(out, snap.SnapshotPending()...)
	}
	return out
}

// SourceAddr forwards AddrSource through the replay wrapper, so a freshly
// promoted session's inlet address is discoverable before its pending
// samples drain.
func (p *pendingSource) SourceAddr() string {
	if a, ok := p.src.(AddrSource); ok {
		return a.SourceAddr()
	}
	return ""
}

// Close implements io.Closer, forwarding to the wrapped source.
func (p *pendingSource) Close() error {
	if c, ok := p.src.(io.Closer); ok {
		return c.Close()
	}
	closeSource(p.src)
	return nil
}
