package stream

import (
	"reflect"
	"testing"
)

// TestRingSnapshotDoesNotConsume: Snapshot must return the buffered samples
// oldest-first, leave the ring untouched, and deep-copy values so later
// producer writes cannot mutate a checkpoint in flight.
func TestRingSnapshotDoesNotConsume(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ { // wraps: 2 oldest overwritten
		r.Push(Sample{Seq: uint64(i), Values: []float64{float64(i)}})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d samples, want 4", len(snap))
	}
	for i, s := range snap {
		if want := uint64(i + 2); s.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest-first after wrap)", i, s.Seq, want)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("snapshot consumed the ring: %d left, want 4", r.Len())
	}
	// Deep copy: mutating the snapshot must not reach the ring.
	snap[0].Values[0] = -999
	popped := r.PopN(1)
	if popped[0].Values[0] == -999 {
		t.Fatal("snapshot aliases ring sample values")
	}
	// And the ring drains in the same order the snapshot reported.
	rest := r.Drain()
	var seqs []uint64
	for _, s := range append(popped[:1:1], rest...) {
		seqs = append(seqs, s.Seq)
	}
	if !reflect.DeepEqual(seqs, []uint64{2, 3, 4, 5}) {
		t.Fatalf("drain order %v", seqs)
	}
}

func TestRingSnapshotEmpty(t *testing.T) {
	if got := NewRing(3).Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
}
