package stream

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleRoundTrip(t *testing.T) {
	s := Sample{Seq: 42, Timestamp: 1.5, Values: []float64{1, -2, 3.25}}
	var got Sample
	raw, _ := s.MarshalBinary()
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if got.Seq != s.Seq || got.Timestamp != s.Timestamp || len(got.Values) != 3 {
		t.Fatalf("round trip mangled: %+v", got)
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Fatalf("value %d: %v != %v", i, got.Values[i], s.Values[i])
		}
	}
}

func TestSampleRoundTripProperty(t *testing.T) {
	f := func(seq uint64, ts float64, raw []float64) bool {
		if len(raw) > 1000 {
			raw = raw[:1000]
		}
		s := Sample{Seq: seq, Timestamp: ts, Values: raw}
		var got Sample
		enc, _ := s.MarshalBinary()
		if err := got.UnmarshalBinary(enc); err != nil {
			return false
		}
		if got.Seq != seq || len(got.Values) != len(raw) {
			return false
		}
		if !math.IsNaN(ts) && got.Timestamp != ts {
			return false
		}
		for i := range raw {
			a, b := got.Values[i], raw[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleUnmarshalErrors(t *testing.T) {
	var s Sample
	if err := s.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("truncated header should error")
	}
	good, _ := (&Sample{Seq: 1, Values: []float64{1, 2}}).MarshalBinary()
	if err := s.UnmarshalBinary(good[:len(good)-4]); err == nil {
		t.Fatal("truncated payload should error")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 9
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Fatal("wrong tag should error")
	}
}

func TestWireSize(t *testing.T) {
	if WireSize(16) != 19+128 {
		t.Fatalf("WireSize(16)=%d", WireSize(16))
	}
	s := Sample{Values: make([]float64, 16)}
	raw, _ := s.MarshalBinary()
	if len(raw) != WireSize(16) {
		t.Fatal("MarshalBinary size disagrees with WireSize")
	}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Push(Sample{Seq: uint64(i)})
	}
	for i := 0; i < 3; i++ {
		s, ok := r.Pop()
		if !ok || s.Seq != uint64(i) {
			t.Fatalf("pop %d: got %+v ok=%v", i, s, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("empty ring should report !ok")
	}
}

func TestRingOverwriteOldest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Push(Sample{Seq: uint64(i)})
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped=%d want 2", r.Dropped())
	}
	got := r.Drain()
	if len(got) != 3 || got[0].Seq != 2 || got[2].Seq != 4 {
		t.Fatalf("drain after overflow: %+v", got)
	}
}

func TestRingFIFOProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRing(8)
		var model []uint64
		next := uint64(0)
		for _, op := range ops {
			if op%3 == 0 && len(model) > 0 {
				s, ok := r.Pop()
				if !ok || s.Seq != model[0] {
					return false
				}
				model = model[1:]
			} else {
				r.Push(Sample{Seq: next})
				model = append(model, next)
				next++
				if len(model) > 8 {
					model = model[1:]
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(0)
}

func TestVirtualClockOffsetDrift(t *testing.T) {
	a := NewVirtualClock(1.0, 0)
	b := NewVirtualClock(0, 0)
	off := a.OffsetTo(b)
	if math.Abs(off-1.0) > 0.05 {
		t.Fatalf("offset %v want ~1.0", off)
	}
	v := a.Now()
	host := a.ToHost(v)
	if math.Abs(host-(v-1.0)) > 0.05 {
		t.Fatalf("ToHost inversion broken: %v vs %v", host, v-1.0)
	}
}

func TestLSLEndToEnd(t *testing.T) {
	src := NewVirtualClock(0.02, 0)
	dst := NewVirtualClock(0, 0)
	out, err := NewLSLOutlet(src, LinkConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	in, err := NewLSLInlet(out.Addr(), dst, 128, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := out.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		out.Push([]float64{float64(i), 2 * float64(i)})
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for in.Ring.Len() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	got := in.Ring.Drain()
	if len(got) != n {
		t.Fatalf("delivered %d/%d samples", len(got), n)
	}
	for i, s := range got {
		if s.Seq != uint64(i) {
			t.Fatalf("out of order: pos %d seq %d", i, s.Seq)
		}
		if s.Values[1] != 2*float64(i) {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestLSLClockSyncConverges(t *testing.T) {
	const trueOffset = 0.05
	src := NewVirtualClock(trueOffset, 0)
	dst := NewVirtualClock(0, 0)
	out, err := NewLSLOutlet(src, LinkConfig{DelayMean: 1e-3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	in, err := NewLSLInlet(out.Addr(), dst, 16, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := out.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if off, ok := in.ClockOffset(); ok && math.Abs(off-trueOffset) < 0.01 {
			return // converged
		}
		time.Sleep(20 * time.Millisecond)
	}
	off, ok := in.ClockOffset()
	t.Fatalf("sync failed to converge: estimate %v (ok=%v) want ~%v", off, ok, trueOffset)
}

func TestUDPEndToEndLossless(t *testing.T) {
	src := NewVirtualClock(0, 0)
	dst := NewVirtualClock(0, 0)
	in, err := NewUDPInlet(dst, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	out, err := NewUDPOutlet(in.Addr(), src, LinkConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		out.Push([]float64{float64(i)})
		time.Sleep(500 * time.Microsecond)
	}
	out.Close()
	deadline := time.Now().Add(time.Second)
	for in.Ring.Len() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := in.Ring.Len(); got < n*95/100 {
		t.Fatalf("loopback UDP delivered only %d/%d", got, n)
	}
}

func TestUDPSimulatedLoss(t *testing.T) {
	src := NewVirtualClock(0, 0)
	dst := NewVirtualClock(0, 0)
	in, err := NewUDPInlet(dst, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	out, err := NewUDPOutlet(in.Addr(), src, LinkConfig{LossProb: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		out.Push([]float64{1})
	}
	out.Close()
	time.Sleep(100 * time.Millisecond)
	dropped := out.DroppedBySim
	if dropped < n/3 || dropped > 2*n/3 {
		t.Fatalf("50%% loss dropped %d/%d", dropped, n)
	}
	if in.Ring.Len() > int(uint64(n)-dropped) {
		t.Fatalf("received %d but only %d were sent", in.Ring.Len(), uint64(n)-dropped)
	}
}

// TestFig4Shape verifies the qualitative result of Figure 4: LSL beats UDP on
// synchronisation and reliability, UDP wins bandwidth efficiency.
func TestFig4Shape(t *testing.T) {
	cfg := DefaultComparisonConfig()
	cfg.Samples = 150 // keep CI fast; full size used by the bench harness
	lsl, udp, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lsl.SyncErrorMs >= udp.SyncErrorMs {
		t.Fatalf("LSL sync error %.3f ms should beat UDP %.3f ms", lsl.SyncErrorMs, udp.SyncErrorMs)
	}
	if lsl.DeliveredFrac < udp.DeliveredFrac {
		t.Fatalf("LSL reliability %.3f should be >= UDP %.3f", lsl.DeliveredFrac, udp.DeliveredFrac)
	}
	if lsl.DeliveredFrac < 0.999 {
		t.Fatalf("LSL must deliver everything, got %.4f", lsl.DeliveredFrac)
	}
	if udp.BandwidthEfficiency <= lsl.BandwidthEfficiency {
		t.Fatalf("UDP bw efficiency %.3f should beat LSL %.3f", udp.BandwidthEfficiency, lsl.BandwidthEfficiency)
	}
	scores := lsl.Scores()
	for _, axis := range []string{"latency", "sample_rate", "synchronization", "low_jitter", "reliability", "bandwidth_efficiency"} {
		v, ok := scores[axis]
		if !ok {
			t.Fatalf("missing score axis %s", axis)
		}
		if v < 0 || v > 10 {
			t.Fatalf("score %s=%v out of [0,10]", axis, v)
		}
	}
}
