package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Shared frame I/O for every stream-oriented transport in the system. Two
// framings live here:
//
//   - the 2-byte-length data framing of the LSL-like transport (writeFrame /
//     readFrame), sized for EEG sample frames and sync probes;
//
//   - the exported 4-byte-length message framing (WriteMsg / ReadMsg) used by
//     the cluster's inter-node links, whose payloads — control messages and
//     streamed checkpoint state including whole models — outgrow a u16
//     length. The length is bounded by MaxMsgLen so a corrupted or hostile
//     prefix cannot ask the reader to allocate gigabytes, mirroring the
//     record bound of internal/checkpoint.

// MaxMsgLen bounds one framed inter-node message. It matches the checkpoint
// record bound: model payloads dominate, and 256 MiB is orders of magnitude
// above any classifier in the zoo.
const MaxMsgLen = 256 << 20

// WriteMsg writes one length-prefixed message: [len u32le][payload].
func WriteMsg(w io.Writer, payload []byte) error {
	if len(payload) > MaxMsgLen {
		return fmt.Errorf("stream: message of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMsg reads one length-prefixed message, enforcing MaxMsgLen.
func ReadMsg(r io.Reader) ([]byte, error) {
	return ReadMsgBuf(r, nil)
}

// ReadMsgBuf is ReadMsg reading the payload into buf when its capacity
// suffices, allocating (and growing the caller's buffer for next time) only
// when it does not. Connection loops pass one per-connection buffer so every
// inbound frame after the largest-yet stops allocating its payload:
//
//	buf := []byte(nil)
//	for {
//		msg, err := stream.ReadMsgBuf(conn, buf)
//		...
//		buf = msg[:0]
//	}
//
// The returned slice aliases buf; it is valid only until the next
// ReadMsgBuf call that reuses it.
func ReadMsgBuf(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxMsgLen {
		return nil, fmt.Errorf("stream: message length %d exceeds limit", n)
	}
	payload := buf
	if cap(payload) < int(n) {
		payload = make([]byte, n)
	}
	payload = payload[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("stream: torn message: %w", err)
	}
	return payload, nil
}

// writeFrame sends a length-prefixed data frame (u16 length, the LSL-like
// transport's wire format). Callers must serialise access.
func writeFrame(conn net.Conn, frame []byte) error {
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(frame)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(frame)
	return err
}

// readFrame reads one length-prefixed data frame.
func readFrame(conn net.Conn, buf []byte) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint16(hdr[:]))
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	_, err := io.ReadFull(conn, buf)
	return buf, err
}
