package stream

import (
	"bytes"
	"encoding/binary"
	"math"
	"net"
	"testing"
	"time"
)

func TestMsgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, []byte("x"), bytes.Repeat([]byte{0xAB}, 70000)}
	for _, p := range payloads {
		if err := WriteMsg(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d mangled: %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func TestMsgRejectsOversizedLength(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxMsgLen+1)
	if _, err := ReadMsg(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized length accepted")
	}
	if err := WriteMsg(&bytes.Buffer{}, make([]byte, MaxMsgLen+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestMsgRejectsTornPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, []byte("complete message")); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadMsg(bytes.NewReader(torn)); err == nil {
		t.Fatal("torn message accepted")
	}
}

// TestUDPInletDropsMalformed feeds an inlet garbage alongside valid samples
// and verifies the garbage is counted and dropped while the valid data flows:
// the hardening contract of an inlet on an open port.
func TestUDPInletDropsMalformed(t *testing.T) {
	in, err := NewUDPInlet(NewVirtualClock(0, 0), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	conn, err := net.Dial("udp", in.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	valid := Sample{Seq: 7, Timestamp: 1.25, Values: []float64{1, 2, 3}}
	frame, _ := valid.MarshalBinary()

	// Oversized channel claim: header says MaxChannels+1 channels.
	overClaim := make([]byte, WireSize(MaxChannels+1))
	overClaim[0] = msgData
	binary.LittleEndian.PutUint16(overClaim[17:], uint16(MaxChannels+1))
	// Trailing garbage after a well-formed sample.
	padded := append(append([]byte(nil), frame...), 0xDE, 0xAD)
	// Truncated payload: claims 3 channels, carries 1.
	short := append([]byte(nil), frame[:headerSize+8]...)

	garbage := [][]byte{
		[]byte("not a sample"),   // wrong tag, undersized
		{msgSyncReq, 0, 0, 0, 0}, // non-data tag
		overClaim,                // channel bound
		padded,                   // size mismatch (trailing bytes)
		short,                    // size mismatch (truncated)
	}
	for _, g := range garbage {
		if _, err := conn.Write(g); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && (in.Ring.Len() < 1 || in.DroppedFrames() < uint64(len(garbage))) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := in.DroppedFrames(); got != uint64(len(garbage)) {
		t.Fatalf("dropped %d frames, want %d", got, len(garbage))
	}
	got := in.Ring.Drain()
	if len(got) != 1 || got[0].Seq != 7 || len(got[0].Values) != 3 ||
		math.Abs(got[0].Values[2]-3) > 0 {
		t.Fatalf("valid sample mangled or lost: %+v", got)
	}
}
