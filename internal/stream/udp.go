package stream

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cognitivearm/internal/obs"
	"cognitivearm/internal/tensor"
)

// UDPOutlet streams samples as independent datagrams over loopback UDP.
// There is no handshake, no retransmission and no clock synchronisation —
// the minimal-overhead baseline of Figure 4.
type UDPOutlet struct {
	conn  *net.UDPConn
	clock *VirtualClock
	link  LinkConfig
	mu    sync.Mutex
	rng   *tensor.RNG
	seq   uint64
	wg    sync.WaitGroup
	// BytesSent counts payload bytes actually handed to the socket (dropped
	// datagrams are not counted, matching what a sender-side meter sees).
	BytesSent uint64
	// DroppedBySim counts datagrams removed by the simulated lossy link.
	DroppedBySim uint64
}

// NewUDPOutlet creates a sender targeting addr (the inlet's bound address).
func NewUDPOutlet(addr string, clock *VirtualClock, link LinkConfig) (*UDPOutlet, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: udp resolve: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("stream: udp dial: %w", err)
	}
	return &UDPOutlet{conn: conn, clock: clock, link: link, rng: tensor.NewRNG(link.Seed ^ 0x0DB)}, nil
}

// Push stamps and transmits one sample. Datagrams may be delayed (jitter) or
// dropped by the simulated link; delayed datagrams can reorder, exactly as
// real UDP allows.
func (o *UDPOutlet) Push(values []float64) Sample {
	o.mu.Lock()
	seq := o.seq
	o.seq++
	drop := o.rng.Float64() < o.link.LossProb
	delay := o.link.DelayMean
	if o.link.DelayJitter > 0 {
		delay += o.link.DelayJitter * o.rng.NormFloat64()
	}
	o.mu.Unlock()

	s := Sample{Seq: seq, Timestamp: o.clock.Now(), Values: append([]float64(nil), values...)}
	if drop {
		o.mu.Lock()
		o.DroppedBySim++
		o.mu.Unlock()
		return s
	}
	frame, _ := s.MarshalBinary()
	send := func() {
		if _, err := o.conn.Write(frame); err == nil {
			o.mu.Lock()
			o.BytesSent += uint64(len(frame))
			o.mu.Unlock()
		}
	}
	if delay > 0 {
		o.wg.Add(1)
		time.AfterFunc(time.Duration(delay*float64(time.Second)), func() {
			defer o.wg.Done()
			send()
		})
	} else {
		send()
	}
	return s
}

// Close flushes in-flight delayed datagrams and closes the socket.
func (o *UDPOutlet) Close() error {
	o.wg.Wait()
	return o.conn.Close()
}

// MaxChannels bounds the per-sample channel count an inlet accepts. The
// synthetic Cyton streams 16; research caps top out in the hundreds. A
// datagram claiming more is malformed or hostile, not a bigger headset.
const MaxChannels = 1024

// UDPInlet receives datagrams into a ring buffer. Timestamps stay in the
// sender's clock frame — UDP has no synchronisation protocol, which is the
// crux of the Figure 4 comparison.
//
// Inbound datagrams are validated before anything touches the ring: the tag
// must mark a data frame, the declared channel count must fit MaxChannels,
// and the datagram size must match the declared geometry exactly. Anything
// else increments the per-inlet drop counter (DroppedFrames) and is
// discarded — an inlet on an open port must account for garbage, not
// silently absorb it.
type UDPInlet struct {
	conn  *net.UDPConn
	clock *VirtualClock
	Ring  *Ring

	mu       sync.Mutex
	arrivals map[uint64]float64

	// Lock-free receive accounting: the reader goroutine bumps these on every
	// datagram while scrapers and tests read them concurrently, so they are
	// atomics rather than riding the arrivals mutex.
	bytesRecv     atomic.Uint64
	droppedFrames atomic.Uint64
}

// NewUDPInlet binds a loopback UDP socket and starts receiving.
func NewUDPInlet(clock *VirtualClock, bufCap int) (*UDPInlet, error) {
	ua, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("stream: udp listen: %w", err)
	}
	in := &UDPInlet{conn: conn, clock: clock, Ring: NewRing(bufCap), arrivals: make(map[uint64]float64)}
	go in.reader()
	return in, nil
}

// Addr returns the bound address for the outlet to dial.
func (in *UDPInlet) Addr() string { return in.conn.LocalAddr().String() }

func (in *UDPInlet) reader() {
	buf := make([]byte, 65536)
	for {
		n, err := in.conn.Read(buf)
		if err != nil {
			return
		}
		s, ok := parseDatagram(buf[:n])
		if !ok {
			in.droppedFrames.Add(1)
			t := streamTel()
			t.udpDrops.Inc()
			t.events.Record(obs.EvInletDrop, -1, 0, 1, 0)
			continue
		}
		now := in.clock.Now()
		in.mu.Lock()
		in.arrivals[s.Seq] = now
		in.mu.Unlock()
		in.bytesRecv.Add(uint64(n))
		streamTel().udpBytes.Add(uint64(n))
		in.Ring.Push(s)
	}
}

// parseDatagram strictly validates one inbound datagram: data tag, channel
// count within MaxChannels, and an exact size match against the declared
// geometry (a sample occupies the whole datagram — trailing bytes mean a
// corrupt or foreign frame, not padding).
func parseDatagram(buf []byte) (Sample, bool) {
	if len(buf) < headerSize || buf[0] != msgData {
		return Sample{}, false
	}
	if nch := int(binary.LittleEndian.Uint16(buf[17:])); nch > MaxChannels || len(buf) != WireSize(nch) {
		return Sample{}, false
	}
	var s Sample
	if err := s.UnmarshalBinary(buf); err != nil {
		return Sample{}, false
	}
	return s, true
}

// DroppedFrames reports how many malformed or oversized datagrams this inlet
// has discarded since creation.
func (in *UDPInlet) DroppedFrames() uint64 {
	return in.droppedFrames.Load()
}

// ArrivalTime returns the inlet-clock arrival time recorded for seq.
func (in *UDPInlet) ArrivalTime(seq uint64) (float64, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	t, ok := in.arrivals[seq]
	return t, ok
}

// BytesReceived reports total payload bytes received.
func (in *UDPInlet) BytesReceived() uint64 {
	return in.bytesRecv.Load()
}

// Close stops the receiver.
func (in *UDPInlet) Close() error { return in.conn.Close() }
