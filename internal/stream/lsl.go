package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cognitivearm/internal/obs"
	"cognitivearm/internal/tensor"
)

// LinkConfig describes the simulated network conditions applied on top of a
// real loopback socket, so both transports face identical adversity.
type LinkConfig struct {
	// DelayMean is the added one-way latency in seconds.
	DelayMean float64
	// DelayJitter is the standard deviation of the added latency.
	DelayJitter float64
	// LossProb is the per-datagram drop probability. Only datagram transports
	// (UDP) actually lose data; stream transports (LSL/TCP) deliver reliably
	// but pay the delay.
	LossProb float64
	// Seed makes the injected impairments reproducible.
	Seed uint64
}

// LSLOutlet is the sending side of the LSL-like transport: a reliable,
// length-prefixed TCP stream that also answers time-synchronisation probes
// from the inlet, mirroring liblsl's outlet behaviour.
type LSLOutlet struct {
	ln      net.Listener
	clock   *VirtualClock
	link    LinkConfig
	rng     *tensor.RNG
	mu      sync.Mutex
	conn    net.Conn
	ready   chan struct{}
	seq     uint64
	sendq   chan []byte
	closed  chan struct{}
	closeMu sync.Once
	// BytesSent counts payload bytes handed to the socket.
	BytesSent uint64
}

// NewLSLOutlet starts listening on a loopback port. The returned outlet must
// be Closed by the caller.
func NewLSLOutlet(clock *VirtualClock, link LinkConfig) (*LSLOutlet, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("stream: lsl listen: %w", err)
	}
	o := &LSLOutlet{
		ln:     ln,
		clock:  clock,
		link:   link,
		rng:    tensor.NewRNG(link.Seed ^ 0x15DC),
		ready:  make(chan struct{}),
		sendq:  make(chan []byte, 4096),
		closed: make(chan struct{}),
	}
	go o.accept()
	return o, nil
}

// Addr returns the address an inlet should dial.
func (o *LSLOutlet) Addr() string { return o.ln.Addr().String() }

func (o *LSLOutlet) accept() {
	conn, err := o.ln.Accept()
	if err != nil {
		return
	}
	o.mu.Lock()
	o.conn = conn
	o.mu.Unlock()
	close(o.ready)
	go o.sender(conn)
	go o.serveSync(conn)
}

// sender paces queued frames, applying the simulated link delay. A single
// goroutine preserves TCP frame ordering.
func (o *LSLOutlet) sender(conn net.Conn) {
	for {
		select {
		case <-o.closed:
			return
		case frame := <-o.sendq:
			if d := o.sampleDelay(); d > 0 {
				time.Sleep(d)
			}
			if err := writeFrame(conn, frame); err != nil {
				return
			}
			o.mu.Lock()
			o.BytesSent += uint64(len(frame))
			o.mu.Unlock()
		}
	}
}

func (o *LSLOutlet) sampleDelay() time.Duration {
	d := o.link.DelayMean
	if o.link.DelayJitter > 0 {
		o.mu.Lock()
		d += o.link.DelayJitter * o.rng.NormFloat64()
		o.mu.Unlock()
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(d * float64(time.Second))
}

// serveSync answers inlet sync probes: it reads 9-byte requests
// [tag][t0 f64] and replies [tag][t0][t1] where t1 is the outlet clock at
// service time. Sync replies bypass the data queue (LSL does the same: sync
// packets are small and prioritised).
func (o *LSLOutlet) serveSync(conn net.Conn) {
	buf := make([]byte, 9)
	resp := make([]byte, 17) // reused across probes: one buffer per connection
	for {
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		if buf[0] != msgSyncReq {
			continue
		}
		resp[0] = msgSyncResp
		copy(resp[1:9], buf[1:9])
		binary.LittleEndian.PutUint64(resp[9:], math.Float64bits(o.clock.Now()))
		o.mu.Lock()
		//cogarm:allow nolockblock -- o.mu deliberately serializes frame writes on the shared conn; sync replies must interleave whole-frame with the data pump
		err := writeFrame(conn, resp)
		o.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// Push stamps values with the outlet clock and queues them for delivery.
// It never blocks: if the queue is full the oldest frame is dropped (the
// freshest-data-wins policy of a real-time acquisition stack).
func (o *LSLOutlet) Push(values []float64) Sample {
	o.mu.Lock()
	seq := o.seq
	o.seq++
	o.mu.Unlock()
	s := Sample{Seq: seq, Timestamp: o.clock.Now(), Values: append([]float64(nil), values...)}
	frame, _ := s.MarshalBinary()
	select {
	case o.sendq <- frame:
	default:
		select {
		case <-o.sendq:
		default:
		}
		select {
		case o.sendq <- frame:
		default:
		}
	}
	return s
}

// WaitReady blocks until an inlet has connected or the timeout elapses.
func (o *LSLOutlet) WaitReady(timeout time.Duration) error {
	select {
	case <-o.ready:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("stream: no inlet connected within %v", timeout)
	}
}

// Close shuts the outlet down.
func (o *LSLOutlet) Close() error {
	o.closeMu.Do(func() { close(o.closed) })
	o.mu.Lock()
	conn := o.conn
	o.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	return o.ln.Close()
}

// LSLInlet is the receiving side: it buffers data into a ring, runs the
// time-synchronisation protocol, and exposes offset-corrected timestamps.
type LSLInlet struct {
	conn  net.Conn
	clock *VirtualClock
	Ring  *Ring

	mu          sync.Mutex
	offsets     []float64          // recent clock-offset estimates (outlet − inlet)
	arrivals    map[uint64]float64 // seq → inlet-clock arrival time
	syncPending chan float64       // t0 of in-flight probe (capacity 1)
	closed      chan struct{}
	closeOnce   sync.Once

	// Lock-free receive accounting: bumped by the reader goroutine on every
	// frame, read concurrently by scrapers and tests (see UDPInlet).
	bytesRecv     atomic.Uint64
	droppedFrames atomic.Uint64 // malformed frames discarded (see DroppedFrames)
}

// NewLSLInlet dials the outlet and starts the reader and synchronisation
// loops. syncEvery controls how often clock probes are sent.
func NewLSLInlet(addr string, clock *VirtualClock, bufCap int, syncEvery time.Duration) (*LSLInlet, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("stream: lsl dial: %w", err)
	}
	in := &LSLInlet{
		conn:        conn,
		clock:       clock,
		Ring:        NewRing(bufCap),
		arrivals:    make(map[uint64]float64),
		syncPending: make(chan float64, 1),
		closed:      make(chan struct{}),
	}
	go in.reader()
	go in.syncLoop(syncEvery)
	return in, nil
}

func (in *LSLInlet) reader() {
	var buf []byte
	for {
		frame, err := readFrame(in.conn, buf)
		if err != nil {
			return
		}
		buf = frame
		in.bytesRecv.Add(uint64(len(frame)))
		streamTel().lslBytes.Add(uint64(len(frame)))
		if len(frame) == 0 {
			in.drop()
			continue
		}
		switch frame[0] {
		case msgData:
			var s Sample
			if err := s.UnmarshalBinary(frame); err != nil {
				in.drop()
				continue
			}
			now := in.clock.Now()
			in.mu.Lock()
			in.arrivals[s.Seq] = now
			in.mu.Unlock()
			in.Ring.Push(s)
		case msgSyncResp:
			if len(frame) < 17 {
				in.drop()
				continue
			}
			t0 := math.Float64frombits(binary.LittleEndian.Uint64(frame[1:9]))
			t1 := math.Float64frombits(binary.LittleEndian.Uint64(frame[9:17]))
			t2 := in.clock.Now()
			// NTP-style: offset = t1 − (t0+t2)/2, robust to symmetric delay.
			est := t1 - (t0+t2)/2
			in.mu.Lock()
			in.offsets = append(in.offsets, est)
			if len(in.offsets) > 32 {
				in.offsets = in.offsets[len(in.offsets)-32:]
			}
			in.mu.Unlock()
			select {
			case <-in.syncPending:
			default:
			}
		default:
			in.drop() // unknown message tag
		}
	}
}

func (in *LSLInlet) syncLoop(every time.Duration) {
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-in.closed:
			return
		case <-tick.C:
			in.probe()
		}
	}
}

// probe sends one sync request if none is in flight.
func (in *LSLInlet) probe() {
	t0 := in.clock.Now()
	select {
	case in.syncPending <- t0:
	default:
		return // previous probe still in flight
	}
	req := make([]byte, 9)
	req[0] = msgSyncReq
	binary.LittleEndian.PutUint64(req[1:], math.Float64bits(t0))
	in.conn.Write(req)
}

// drop counts one malformed frame.
func (in *LSLInlet) drop() {
	in.droppedFrames.Add(1)
	t := streamTel()
	t.lslDrops.Inc()
	t.events.Record(obs.EvInletDrop, -1, 0, 1, 0)
}

// DroppedFrames reports how many malformed frames this inlet has discarded
// since creation.
func (in *LSLInlet) DroppedFrames() uint64 {
	return in.droppedFrames.Load()
}

// ClockOffset returns the current median offset estimate (outlet clock −
// inlet clock) and whether any estimate exists yet.
func (in *LSLInlet) ClockOffset() (float64, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.offsets) == 0 {
		return 0, false
	}
	tmp := append([]float64(nil), in.offsets...)
	sort.Float64s(tmp)
	return tmp[len(tmp)/2], true
}

// Corrected converts a sample's sender timestamp into the inlet clock frame
// using the sync estimate; without an estimate it returns the raw timestamp.
func (in *LSLInlet) Corrected(s Sample) float64 {
	off, ok := in.ClockOffset()
	if !ok {
		return s.Timestamp
	}
	return s.Timestamp - off
}

// ArrivalTime returns the inlet-clock arrival time recorded for seq.
func (in *LSLInlet) ArrivalTime(seq uint64) (float64, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	t, ok := in.arrivals[seq]
	return t, ok
}

// BytesReceived reports total payload bytes received.
func (in *LSLInlet) BytesReceived() uint64 {
	return in.bytesRecv.Load()
}

// Close tears the inlet down.
func (in *LSLInlet) Close() error {
	in.closeOnce.Do(func() { close(in.closed) })
	return in.conn.Close()
}
