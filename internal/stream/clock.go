package stream

import (
	"sync"
	"time"
)

// VirtualClock models an endpoint clock with a fixed offset and linear drift
// relative to the host monotonic clock. Real LSL deployments face exactly
// this: the acquisition laptop and the edge device disagree by an unknown,
// slowly changing offset, which the LSL time-synchronisation protocol
// estimates and removes. UDP streaming has no such protocol, so its
// timestamps stay in the sender's frame.
type VirtualClock struct {
	mu     sync.Mutex
	base   time.Time
	offset float64 // seconds added to the host clock
	drift  float64 // fractional rate error (e.g. 50e-6 = 50 ppm)
}

// NewVirtualClock creates a clock with the given offset (seconds) and drift
// (fractional, e.g. 20e-6 for 20 ppm).
func NewVirtualClock(offset, drift float64) *VirtualClock {
	return &VirtualClock{base: time.Now(), offset: offset, drift: drift}
}

// Now returns the current virtual time in seconds.
//
//cogarm:zeroalloc
func (c *VirtualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := time.Since(c.base).Seconds()
	return elapsed*(1+c.drift) + c.offset
}

// OffsetTo returns the instantaneous offset of this clock relative to other
// (this − other), the ground truth a sync protocol tries to estimate.
func (c *VirtualClock) OffsetTo(other *VirtualClock) float64 {
	return c.Now() - other.Now()
}
