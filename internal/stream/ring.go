package stream

import "sync"

// Ring is a fixed-capacity thread-safe FIFO of samples. When full, pushing
// overwrites the oldest element — matching acquisition-buffer semantics where
// stale EEG is worthless and the newest data must always flow.
type Ring struct {
	mu      sync.Mutex
	buf     []Sample
	head    int // index of the oldest element
	size    int
	dropped uint64
	notify  chan struct{}
}

// NewRing creates a ring holding up to capacity samples. Capacity must be
// positive.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("stream: ring capacity must be positive")
	}
	return &Ring{buf: make([]Sample, capacity), notify: make(chan struct{}, 1)}
}

// Push appends a sample, overwriting the oldest if full. It reports whether
// an old sample was overwritten.
//
//cogarm:zeroalloc
func (r *Ring) Push(s Sample) (overwrote bool) {
	r.mu.Lock()
	if r.size == len(r.buf) {
		r.buf[r.head] = s
		r.head = (r.head + 1) % len(r.buf)
		r.dropped++
		overwrote = true
	} else {
		r.buf[(r.head+r.size)%len(r.buf)] = s
		r.size++
	}
	r.mu.Unlock()
	select {
	case r.notify <- struct{}{}:
	default:
	}
	return overwrote
}

// Pop removes and returns the oldest sample, or ok=false when empty.
func (r *Ring) Pop() (s Sample, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.size == 0 {
		return Sample{}, false
	}
	s = r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return s, true
}

// PopN removes and returns up to max buffered samples, oldest first. max <= 0
// drains everything (like Drain). It is the bulk-read used by serving
// sessions fed from network inlets.
func (r *Ring) PopN(max int) []Sample {
	r.mu.Lock()
	n := r.size
	if max > 0 && max < n {
		n = max
	}
	r.mu.Unlock()
	return r.PopNInto(make([]Sample, 0, n), max)
}

// PopNInto is PopN appending into dst — the allocation-free bulk read of the
// serving hot path: a shard passes one per-shard buffer (reset to dst[:0]
// between sessions) so draining a ring costs no heap allocations. The
// returned slice aliases dst's backing array when capacity suffices.
//
//cogarm:zeroalloc
func (r *Ring) PopNInto(dst []Sample, max int) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.size
	if max > 0 && max < n {
		n = max
	}
	for i := 0; i < n; i++ {
		dst = append(dst, r.buf[r.head])
		r.head = (r.head + 1) % len(r.buf)
		r.size--
	}
	return dst
}

// Snapshot returns a deep copy of the buffered samples, oldest first, without
// consuming them. It is the checkpoint path: a fleet snapshot must capture
// samples that arrived but have not been ticked through a session yet, while
// the producer keeps pushing and the shard keeps popping.
func (r *Ring) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, r.size)
	for i := 0; i < r.size; i++ {
		s := r.buf[(r.head+i)%len(r.buf)]
		s.Values = append([]float64(nil), s.Values...)
		out = append(out, s)
	}
	return out
}

// Len returns the number of buffered samples.
//
//cogarm:zeroalloc
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Dropped returns how many samples have been overwritten since creation.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Wait returns a channel that receives a token when new data may be
// available. It never blocks producers.
func (r *Ring) Wait() <-chan struct{} { return r.notify }

// Drain pops everything currently buffered, oldest first.
func (r *Ring) Drain() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, r.size)
	for r.size > 0 {
		out = append(out, r.buf[r.head])
		r.head = (r.head + 1) % len(r.buf)
		r.size--
	}
	return out
}
