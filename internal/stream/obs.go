package stream

import (
	"sync"

	"cognitivearm/internal/obs"
)

// Inlet telemetry: frame drops and receive volume per transport on the
// process-global obs registry, plus an inlet_drop lifecycle event per
// discarded frame. The per-inlet counters (DroppedFrames, BytesReceived)
// are atomic and stay the authoritative per-connection view; these series
// aggregate across every inlet the process hosts.

type streamObs struct {
	udpDrops *obs.Counter
	lslDrops *obs.Counter
	udpBytes *obs.Counter
	lslBytes *obs.Counter
	events   *obs.EventRing
}

var (
	streamTelOnce sync.Once
	streamTelVal  *streamObs
)

// streamTel returns the lazily-built stream telemetry holder. It never
// returns nil and every handle field is populated from the default
// registry, so derived uses need no guard.
//
//cogarm:obsnonnil
func streamTel() *streamObs {
	streamTelOnce.Do(func() {
		reg := obs.Default()
		drops := func(transport string) *obs.Counter {
			return reg.Counter("cogarm_stream_frames_dropped_total",
				"Malformed or oversized inbound frames discarded by inlets, by transport.",
				obs.L("transport", transport))
		}
		bytes := func(transport string) *obs.Counter {
			return reg.Counter("cogarm_stream_bytes_received_total",
				"Payload bytes received by inlets, by transport.",
				obs.L("transport", transport))
		}
		streamTelVal = &streamObs{
			udpDrops: drops("udp"),
			lslDrops: drops("lsl"),
			udpBytes: bytes("udp"),
			lslBytes: bytes("lsl"),
			events:   obs.DefaultEvents(),
		}
	})
	return streamTelVal
}
