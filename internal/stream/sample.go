// Package stream implements the data-transport substrate of CognitiveArm: a
// Lab-Streaming-Layer-like (LSL) reliable, time-synchronised transport and a
// plain UDP datagram transport, both carrying 16-channel EEG at 125 Hz over
// real loopback sockets. The two are compared head-to-head to regenerate the
// paper's Figure 4 (LSL wins on latency consistency, synchronisation, jitter
// and reliability; UDP wins raw bandwidth efficiency).
package stream

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Sample is one multichannel EEG frame with its source timestamp.
type Sample struct {
	// Seq is a monotonically increasing sequence number assigned by the
	// outlet; inlets use gaps to count losses.
	Seq uint64
	// Timestamp is the sender-clock acquisition time in seconds.
	Timestamp float64
	// Values holds one value per channel (microvolts).
	Values []float64
}

// Message type tags used on the wire.
const (
	msgData     = byte(0)
	msgSyncReq  = byte(1)
	msgSyncResp = byte(2)
)

// headerSize is tag + seq + timestamp + channel count.
const headerSize = 1 + 8 + 8 + 2

// MarshalBinary encodes the sample in the little-endian wire format:
// [tag u8][seq u64][timestamp f64][nch u16][values f64 ×nch]. The error is
// always nil; the ([]byte, error) signature makes Sample a proper
// encoding.BinaryMarshaler, matching UnmarshalBinary — an asymmetric pair
// (only the unmarshal side conforming) makes encoding/gob encode the struct
// field-wise but refuse to decode it, so any gob payload holding a Sample
// would be unreadable.
func (s *Sample) MarshalBinary() ([]byte, error) {
	buf := make([]byte, headerSize+8*len(s.Values))
	buf[0] = msgData
	binary.LittleEndian.PutUint64(buf[1:], s.Seq)
	binary.LittleEndian.PutUint64(buf[9:], math.Float64bits(s.Timestamp))
	binary.LittleEndian.PutUint16(buf[17:], uint16(len(s.Values)))
	for i, v := range s.Values {
		binary.LittleEndian.PutUint64(buf[headerSize+8*i:], math.Float64bits(v))
	}
	return buf, nil
}

// UnmarshalBinary decodes a wire-format sample.
func (s *Sample) UnmarshalBinary(buf []byte) error {
	if len(buf) < headerSize {
		return fmt.Errorf("stream: sample truncated (%d bytes)", len(buf))
	}
	if buf[0] != msgData {
		return fmt.Errorf("stream: not a data message (tag %d)", buf[0])
	}
	s.Seq = binary.LittleEndian.Uint64(buf[1:])
	s.Timestamp = math.Float64frombits(binary.LittleEndian.Uint64(buf[9:]))
	n := int(binary.LittleEndian.Uint16(buf[17:]))
	if len(buf) < headerSize+8*n {
		return fmt.Errorf("stream: sample payload truncated (want %d ch)", n)
	}
	if cap(s.Values) < n {
		s.Values = make([]float64, n)
	}
	s.Values = s.Values[:n]
	for i := 0; i < n; i++ {
		s.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[headerSize+8*i:]))
	}
	return nil
}

// WireSize returns the encoded size in bytes for nch channels.
func WireSize(nch int) int { return headerSize + 8*nch }
