package stream

import (
	"fmt"
	"math"
	"time"
)

// Per-packet header overhead on the wire (bytes), used for the bandwidth-
// efficiency comparison: UDP pays IPv4(20)+UDP(8); the LSL-like transport
// pays IPv4(20)+TCP(20) plus our 2-byte frame prefix.
const (
	udpHeaderOverhead = 28
	tcpHeaderOverhead = 42
)

// ToHost converts a virtual-clock reading back to host seconds-since-base.
// The conversion inverts Now(): host = (v − offset)/(1+drift).
func (c *VirtualClock) ToHost(v float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return (v - c.offset) / (1 + c.drift)
}

// TransportMetrics summarises one transport's behaviour under a test load —
// the six axes of the paper's Figure 4.
type TransportMetrics struct {
	Name string
	// LatencyMeanMs is the mean end-to-end delivery latency.
	LatencyMeanMs float64
	// JitterMs is the standard deviation of delivery latency.
	JitterMs float64
	// DeliveredFrac is the fraction of pushed samples that arrived.
	DeliveredFrac float64
	// EffectiveRateHz is delivered samples / wall time.
	EffectiveRateHz float64
	// SyncErrorMs is the absolute error of the receiver's reconstruction of
	// sender timestamps, after any synchronisation protocol.
	SyncErrorMs float64
	// BandwidthEfficiency is payload bytes / (payload + header) per packet.
	BandwidthEfficiency float64
}

// Scores maps the metrics onto the 0–10 "higher is better" axes used in
// Figure 4: latency, sample-rate consistency, synchronisation, jitter,
// reliability, bandwidth efficiency.
func (m TransportMetrics) Scores() map[string]float64 {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 10 {
			return 10
		}
		return v
	}
	return map[string]float64{
		// 0 ms → 10, 50 ms → 0.
		"latency": clamp(10 * (1 - m.LatencyMeanMs/50)),
		// fraction of nominal 125 Hz sustained.
		"sample_rate": clamp(10 * m.EffectiveRateHz / 125),
		// 0 ms sync error → 10, 25 ms → 0.
		"synchronization": clamp(10 * (1 - m.SyncErrorMs/25)),
		// 0 ms jitter → 10, 10 ms → 0.
		"low_jitter":           clamp(10 * (1 - m.JitterMs/10)),
		"reliability":          clamp(10 * m.DeliveredFrac),
		"bandwidth_efficiency": clamp(10 * m.BandwidthEfficiency),
	}
}

func (m TransportMetrics) String() string {
	return fmt.Sprintf("%-4s latency=%.2fms jitter=%.2fms delivered=%.1f%% rate=%.1fHz sync_err=%.2fms bw_eff=%.3f",
		m.Name, m.LatencyMeanMs, m.JitterMs, 100*m.DeliveredFrac, m.EffectiveRateHz, m.SyncErrorMs, m.BandwidthEfficiency)
}

// ComparisonConfig drives RunComparison.
type ComparisonConfig struct {
	Samples  int     // number of EEG frames to stream
	Channels int     // channels per frame
	RateHz   float64 // nominal acquisition rate
	Link     LinkConfig
	// ClockOffset/ClockDrift model the disagreement between the acquisition
	// machine and the edge device.
	ClockOffset float64
	ClockDrift  float64
}

// DefaultComparisonConfig reproduces the paper's operating point: 16-channel
// EEG at 125 Hz over a mildly jittery local link with skewed endpoint clocks.
func DefaultComparisonConfig() ComparisonConfig {
	return ComparisonConfig{
		Samples:  500,
		Channels: 16,
		RateHz:   125,
		Link: LinkConfig{
			DelayMean:   2e-3,
			DelayJitter: 0.5e-3,
			LossProb:    0.02,
			Seed:        1,
		},
		ClockOffset: 0.015, // 15 ms skew between headset laptop and edge device
		ClockDrift:  30e-6,
	}
}

// RunComparison streams the same synthetic load over the LSL-like and UDP
// transports and measures the Figure 4 axes for each.
func RunComparison(cfg ComparisonConfig) (lsl, udp TransportMetrics, err error) {
	lsl, err = runLSL(cfg)
	if err != nil {
		return lsl, udp, fmt.Errorf("lsl leg: %w", err)
	}
	udp, err = runUDP(cfg)
	if err != nil {
		return lsl, udp, fmt.Errorf("udp leg: %w", err)
	}
	return lsl, udp, nil
}

func runLSL(cfg ComparisonConfig) (TransportMetrics, error) {
	var m TransportMetrics
	m.Name = "LSL"
	srcClock := NewVirtualClock(cfg.ClockOffset, cfg.ClockDrift)
	dstClock := NewVirtualClock(0, 0)

	out, err := NewLSLOutlet(srcClock, cfg.Link)
	if err != nil {
		return m, err
	}
	defer out.Close()
	in, err := NewLSLInlet(out.Addr(), dstClock, cfg.Samples+16, 20*time.Millisecond)
	if err != nil {
		return m, err
	}
	defer in.Close()
	if err := out.WaitReady(2 * time.Second); err != nil {
		return m, err
	}
	// Give the sync protocol a few probes before data flows, as liblsl does
	// on stream open.
	time.Sleep(120 * time.Millisecond)

	sendHost := make(map[uint64]time.Time, cfg.Samples)
	values := make([]float64, cfg.Channels)
	interval := time.Duration(float64(time.Second) / cfg.RateHz)
	start := time.Now()
	for i := 0; i < cfg.Samples; i++ {
		for c := range values {
			values[c] = float64(i + c)
		}
		s := out.Push(values)
		sendHost[s.Seq] = time.Now()
		time.Sleep(interval)
	}
	// Allow in-flight frames to land.
	deadline := time.Now().Add(time.Second)
	for in.Ring.Len() < cfg.Samples && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()

	samples := in.Ring.Drain()
	lat := make([]float64, 0, len(samples))
	syncErrs := make([]float64, 0, len(samples))
	trueOffset := srcClock.OffsetTo(dstClock)
	for _, s := range samples {
		arrV, ok := in.ArrivalTime(s.Seq)
		if !ok {
			continue
		}
		arrHostSec := dstClock.ToHost(arrV)
		sentAt, ok := sendHost[s.Seq]
		if !ok {
			continue
		}
		lat = append(lat, arrHostSec-sentAt.Sub(dstClockBase(dstClock)).Seconds())
		corrected := in.Corrected(s)
		truthInDst := s.Timestamp - trueOffset
		syncErrs = append(syncErrs, math.Abs(corrected-truthInDst))
	}
	m.LatencyMeanMs = 1e3 * mean(lat)
	m.JitterMs = 1e3 * std(lat)
	m.DeliveredFrac = float64(len(samples)) / float64(cfg.Samples)
	m.EffectiveRateHz = float64(len(samples)) / elapsed
	m.SyncErrorMs = 1e3 * mean(syncErrs)
	payload := float64(WireSize(cfg.Channels))
	m.BandwidthEfficiency = payload / (payload + 2 + tcpHeaderOverhead)
	return m, nil
}

func runUDP(cfg ComparisonConfig) (TransportMetrics, error) {
	var m TransportMetrics
	m.Name = "UDP"
	srcClock := NewVirtualClock(cfg.ClockOffset, cfg.ClockDrift)
	dstClock := NewVirtualClock(0, 0)

	in, err := NewUDPInlet(dstClock, cfg.Samples+16)
	if err != nil {
		return m, err
	}
	defer in.Close()
	out, err := NewUDPOutlet(in.Addr(), srcClock, cfg.Link)
	if err != nil {
		return m, err
	}

	sendHost := make(map[uint64]time.Time, cfg.Samples)
	values := make([]float64, cfg.Channels)
	interval := time.Duration(float64(time.Second) / cfg.RateHz)
	start := time.Now()
	for i := 0; i < cfg.Samples; i++ {
		for c := range values {
			values[c] = float64(i + c)
		}
		s := out.Push(values)
		sendHost[s.Seq] = time.Now()
		time.Sleep(interval)
	}
	out.Close() // waits for delayed datagrams
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) && in.Ring.Len() < cfg.Samples {
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()

	samples := in.Ring.Drain()
	lat := make([]float64, 0, len(samples))
	syncErrs := make([]float64, 0, len(samples))
	trueOffset := srcClock.OffsetTo(dstClock)
	for _, s := range samples {
		arrV, ok := in.ArrivalTime(s.Seq)
		if !ok {
			continue
		}
		arrHostSec := dstClock.ToHost(arrV)
		sentAt, ok := sendHost[s.Seq]
		if !ok {
			continue
		}
		lat = append(lat, arrHostSec-sentAt.Sub(dstClockBase(dstClock)).Seconds())
		// No sync protocol: the receiver's best reconstruction IS the raw
		// sender timestamp, so the error equals the clock disagreement.
		truthInDst := s.Timestamp - trueOffset
		syncErrs = append(syncErrs, math.Abs(s.Timestamp-truthInDst))
	}
	m.LatencyMeanMs = 1e3 * mean(lat)
	m.JitterMs = 1e3 * std(lat)
	m.DeliveredFrac = float64(len(samples)) / float64(cfg.Samples)
	m.EffectiveRateHz = float64(len(samples)) / elapsed
	m.SyncErrorMs = 1e3 * mean(syncErrs)
	payload := float64(WireSize(cfg.Channels))
	m.BandwidthEfficiency = payload / (payload + udpHeaderOverhead)
	return m, nil
}

// dstClockBase exposes the receiver clock's epoch so host-time latencies can
// be formed from time.Time values.
func dstClockBase(c *VirtualClock) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func std(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	mu := mean(v)
	var s float64
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}
