// Command benchgate is the CI perf-regression gate: it runs a fresh
// `benchtables -serve` and diffs the result against the committed
// BENCH_serve.json baseline. The gate fails (exit 1) when any model's
// µs/inference grows more than -tolerance (default 15%) or its
// allocs/tick grows at all.
//
// The two thresholds are deliberately asymmetric. µs/inference is
// hardware- and load-dependent — CI runners are noisy, so only a gross
// regression beyond the tolerance band is actionable, and the committed
// baseline should itself be refreshed on dedicated hardware (see
// OPERATIONS.md "Performance baselines"). allocs/tick is a structural
// property of the code: PRs 5–6 made steady-state serving
// allocation-free up to a fixed per-tick overhead, cogarmvet proves the
// annotated kernels stay that way, and this gate catches whatever the
// static analysis cannot see (interface boxing through dynamic dispatch,
// stdlib changes). A real leak allocates on every tick and shows up as
// growth of at least one whole alloc/tick; anything below that is a
// one-off (GC assist, lazy map growth) amortized across the run, so the
// gate fails only on growth >= 1.
//
// Usage:
//
//	go run ./scripts/benchgate.go [-baseline BENCH_serve.json] [-tolerance 15]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
)

type report struct {
	Models map[string]struct {
		UsPerInference float64 `json:"us_per_inference"`
		AllocsPerTick  float64 `json:"allocs_per_tick"`
	} `json:"models"`
	Wal struct {
		AppendUsPerTick float64 `json:"append_us_per_tick"`
	} `json:"wal"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_serve.json", "committed baseline report")
	tolerance := flag.Float64("tolerance", 15, "allowed µs/inference growth, percent")
	keep := flag.String("out", "", "also write the fresh report here (default: discard)")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fatalf("reading baseline: %v", err)
	}

	freshPath := *keep
	if freshPath == "" {
		dir, err := os.MkdirTemp("", "benchgate")
		if err != nil {
			fatalf("tempdir: %v", err)
		}
		defer os.RemoveAll(dir)
		freshPath = filepath.Join(dir, "serve.json")
	}
	cmd := exec.Command("go", "run", "./cmd/benchtables", "-serve", "-serve-out", freshPath)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatalf("benchtables -serve: %v", err)
	}
	fresh, err := load(freshPath)
	if err != nil {
		fatalf("reading fresh report: %v", err)
	}

	failed := false
	for name, b := range base.Models {
		f, ok := fresh.Models[name]
		if !ok {
			fmt.Printf("benchgate: FAIL %s: model missing from fresh report\n", name)
			failed = true
			continue
		}
		growth := 100 * (f.UsPerInference - b.UsPerInference) / b.UsPerInference
		if growth > *tolerance {
			fmt.Printf("benchgate: FAIL %s: µs/inference %.2f -> %.2f (%+.1f%% > %.0f%% tolerance)\n",
				name, b.UsPerInference, f.UsPerInference, growth, *tolerance)
			failed = true
		} else {
			fmt.Printf("benchgate: ok   %s: µs/inference %.2f -> %.2f (%+.1f%%)\n",
				name, b.UsPerInference, f.UsPerInference, growth)
		}
		if f.AllocsPerTick >= b.AllocsPerTick+1 {
			fmt.Printf("benchgate: FAIL %s: allocs/tick %.2f -> %.2f (steady state must not allocate more)\n",
				name, b.AllocsPerTick, f.AllocsPerTick)
			failed = true
		} else {
			fmt.Printf("benchgate: ok   %s: allocs/tick %.2f -> %.2f\n",
				name, b.AllocsPerTick, f.AllocsPerTick)
		}
	}
	// WAL append shares the µs tolerance band; a zero baseline means the
	// committed report predates the column and the gate skips it.
	if b, f := base.Wal.AppendUsPerTick, fresh.Wal.AppendUsPerTick; b > 0 {
		growth := 100 * (f - b) / b
		if growth > *tolerance {
			fmt.Printf("benchgate: FAIL wal: append µs/tick %.2f -> %.2f (%+.1f%% > %.0f%% tolerance)\n",
				b, f, growth, *tolerance)
			failed = true
		} else {
			fmt.Printf("benchgate: ok   wal: append µs/tick %.2f -> %.2f (%+.1f%%)\n", b, f, growth)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Models) == 0 {
		return nil, fmt.Errorf("%s: no models in report", path)
	}
	return &r, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
