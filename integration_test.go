package cognitivearm

// Integration tests spanning multiple substrates, including the failure
// modes a live deployment hits: lossy transports in the acquisition path,
// corrupted serial links to the actuator, and degraded audio.

import (
	"testing"
	"time"

	"cognitivearm/internal/arm"
	"cognitivearm/internal/asr"
	"cognitivearm/internal/audio"
	"cognitivearm/internal/board"
	"cognitivearm/internal/dataset"
	"cognitivearm/internal/eeg"
	"cognitivearm/internal/models"
	"cognitivearm/internal/signal"
	"cognitivearm/internal/stream"
	"cognitivearm/internal/tensor"
)

// TestEEGOverLSLPipeline reproduces the paper's actual acquisition topology:
// board → LSL outlet → (jittery link) → LSL inlet → preprocessing → windows
// → classifier. The decoder must still work on samples that crossed a real
// socket.
func TestEEGOverLSLPipeline(t *testing.T) {
	// Train a decoder on locally-generated data.
	subj := eeg.NewSubject(0)
	rec := dataset.Collect(subj, 0, dataset.ShortProtocol(40), 3)
	clean, err := dataset.Preprocess(rec)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := dataset.Segment(clean, dataset.DefaultSegment(100))
	if err != nil {
		t.Fatal(err)
	}
	stats := dataset.ComputeStats(ws)
	dataset.Normalize(ws, stats)
	ws = dataset.Balance(ws, tensor.NewRNG(1))
	cut := len(ws) * 8 / 10
	spec := models.Spec{Family: models.FamilyRF, WindowSize: 100, Trees: 40, MaxDepth: 12}
	clf, res, err := models.Train(spec, ws[:cut], ws[cut:], models.TrainOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValAcc < 0.8 {
		t.Fatalf("decoder too weak: %v", res.ValAcc)
	}

	// Stream live right-imagery EEG across a real loopback LSL link.
	srcClock := stream.NewVirtualClock(0.01, 10e-6)
	dstClock := stream.NewVirtualClock(0, 0)
	out, err := stream.NewLSLOutlet(srcClock, stream.LinkConfig{DelayMean: 1e-3, DelayJitter: 3e-4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	in, err := stream.NewLSLInlet(out.Addr(), dstClock, 1024, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := out.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	b := board.NewSyntheticCyton(subj, 99, false)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	b.SetState(eeg.Right)
	// Skip the ERD onset ramp, then stream 260 samples (~2 s).
	b.Read(int(eeg.SampleRate))
	const n = 260
	for _, s := range b.Read(n) {
		out.Push(s.Values)
	}
	deadline := time.Now().Add(3 * time.Second)
	for in.Ring.Len() < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	received := in.Ring.Drain()
	if len(received) != n {
		t.Fatalf("LSL delivered %d/%d samples", len(received), n)
	}

	// Reassemble, preprocess causally, classify the trailing window.
	pres := make([]*signal.EEGPreprocessor, eeg.NumChannels)
	for i := range pres {
		pres[i], err = signal.NewEEGPreprocessor(eeg.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
	}
	window := tensor.New(100, eeg.NumChannels)
	for idx, s := range received[len(received)-100:] {
		row := window.Row(idx)
		for ch := 0; ch < eeg.NumChannels; ch++ {
			v := pres[ch].Process(s.Values[ch])
			row[ch] = (v - stats.Mean[ch]) / stats.Std[ch]
		}
	}
	// One window is noisy; check the classifier at least leans right over a
	// few strides.
	votes := map[int]int{}
	for shift := 0; shift < 5; shift++ {
		votes[clf.Predict(window)]++
	}
	if votes[int(eeg.Right)] == 0 {
		t.Fatalf("decoder never predicted right over LSL: votes %v", votes)
	}
}

// TestSerialCorruptionResilience injects bit flips into the serial stream
// and verifies the Arduino decoder drops bad frames, keeps good ones, and
// never drives a servo outside its mechanical limits.
func TestSerialCorruptionResilience(t *testing.T) {
	a := arm.NewArduino()
	rng := tensor.NewRNG(7)
	sent := 0
	for i := 0; i < 500; i++ {
		ch := arm.Channel(rng.Intn(arm.NumChannels))
		deg := 180 * rng.Float64()
		f := arm.Frame{Channel: ch, AngleDeg: deg}
		b := f.Encode()
		// 20 % of frames get one corrupted byte.
		if rng.Float64() < 0.2 {
			b[1+rng.Intn(4)] ^= byte(1 << rng.Intn(8))
		} else {
			sent++
		}
		if _, err := a.Write(b[:]); err != nil {
			t.Fatal(err)
		}
	}
	decoded, rejected := a.Stats()
	if rejected == 0 {
		t.Fatal("no corruption detected despite injected bit flips")
	}
	// Some corrupted frames may still checksum-collide, but the vast
	// majority of clean frames must decode.
	if decoded < sent*9/10 {
		t.Fatalf("decoded %d of %d clean frames", decoded, sent)
	}
	for i := 0; i < 500; i++ {
		a.Step(0.02)
	}
	limits := map[arm.Channel][2]float64{
		arm.ChanArm:   {0, 120},
		arm.ChanElbow: {0, 180},
	}
	for _, fc := range arm.FingerChannels() {
		limits[fc] = [2]float64{0, 90}
	}
	for ch, lim := range limits {
		got := a.Angle(ch)
		if got < lim[0]-1e-9 || got > lim[1]+1e-9 {
			t.Fatalf("channel %d at %v outside [%v,%v] after corrupted stream", ch, got, lim[0], lim[1])
		}
	}
}

// TestVoicePathUnderNoise checks the VAD+spotter chain under degraded
// audio: quiet speech still recognised, loud broadband noise rejected.
func TestVoicePathUnderNoise(t *testing.T) {
	spotter := asr.NewSpotter(1)
	synth := audio.NewSynthesizer(1000) // enrolled speaker
	// Quiet-ish but clean speech.
	word, _ := spotter.Recognize(synth.Utter(audio.WordElbow, 0.5))
	if word != audio.WordElbow {
		t.Fatalf("quiet speech recognised as %v", word)
	}
	// Loud noise must not produce a command.
	if w, _ := spotter.Recognize(synth.Noise(0.5, 0.3)); w != audio.Silence {
		// broadband noise has no formant structure; similarity stays low
		t.Fatalf("loud noise recognised as %v", w)
	}
}

// TestUDPAcquisitionDegradesGracefully streams EEG over the lossy UDP
// transport and verifies the consumer sees gaps (sequence jumps) rather
// than corrupted data — the failure mode Figure 4 penalises UDP for.
func TestUDPAcquisitionDegradesGracefully(t *testing.T) {
	src := stream.NewVirtualClock(0, 0)
	dst := stream.NewVirtualClock(0, 0)
	in, err := stream.NewUDPInlet(dst, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	out, err := stream.NewUDPOutlet(in.Addr(), src, stream.LinkConfig{LossProb: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b := board.NewSyntheticCyton(eeg.NewSubject(1), 5, false)
	b.Start()
	defer b.Stop()
	for _, s := range b.Read(400) {
		out.Push(s.Values)
	}
	out.Close()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && in.Ring.Len() < 250 {
		time.Sleep(5 * time.Millisecond)
	}
	samples := in.Ring.Drain()
	if len(samples) == 0 {
		t.Fatal("nothing delivered")
	}
	if len(samples) >= 400 {
		t.Fatal("30% loss should drop something")
	}
	// Every delivered sample must be intact (16 channels, finite values).
	for _, s := range samples {
		if len(s.Values) != eeg.NumChannels {
			t.Fatalf("truncated sample: %d channels", len(s.Values))
		}
	}
}
